//! An *uncoordinated* duty-cycling baseline — what the paper's algorithms
//! are implicitly compared against.
//!
//! `DutyCycle` keeps exactly `k` pseudorandomly chosen stations on per
//! round (a legal `k`-energy-oblivious schedule) and lets every switched-on
//! station with packets transmit with probability 1/2. Without the paper's
//! coordination this is doubly broken, and measurably so:
//!
//! * two holders awake together collide — wasted rounds;
//! * a heard packet whose destination happens to be asleep is **lost**
//!   (this model has no acknowledgements, so the sender cannot know to
//!   retransmit — which is exactly why the paper's algorithms schedule
//!   *receivers*, not just transmitters).
//!
//! The validator consequently reports collisions and lost packets for this
//! baseline; those counts are the experiment's measurement, not a bug (see
//! the `ablations` binary, section B0). Do not use this as a routing
//! algorithm.

use std::sync::{Arc, Mutex};

use emac_sim::{
    Action, AlgorithmClass, BuiltAlgorithm, Effects, Feedback, IndexedQueue, Message, OnSchedule,
    Protocol, ProtocolCtx, Round, StationId, Wake, WakeMode,
};

use crate::algorithm::Algorithm;

/// SplitMix64 — a tiny, high-quality mixing function; keeps the baseline
/// deterministic per seed without a `rand` dependency in the hot path.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pseudorandom exactly-`k`-on schedule: round `r` switches on the first
/// `k` elements of a seeded Fisher–Yates shuffle of the stations.
#[derive(Debug)]
pub struct RandomOnSchedule {
    n: usize,
    k: usize,
    seed: u64,
    /// Reusable shuffle buffer. The partial Fisher–Yates needs all `n`
    /// station names; keeping them here (behind an uncontended mutex — the
    /// engine queries the schedule from one thread) makes `on_set_into`
    /// allocation-free in steady state.
    scratch: Mutex<Vec<StationId>>,
}

impl RandomOnSchedule {
    /// Schedule for `n` stations, cap `k`, deterministic in `seed`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(k >= 2 && k <= n);
        Self { n, k, seed, scratch: Mutex::new(Vec::with_capacity(n)) }
    }

    /// Partial Fisher–Yates of `ids = 0..n` for `round`; the chosen set is
    /// `ids[..k]` (unsorted).
    fn shuffle_into(&self, round: Round, ids: &mut Vec<StationId>) {
        ids.clear();
        ids.extend(0..self.n);
        let mut state = mix(self.seed ^ round.wrapping_mul(0x517c_c1b7_2722_0a95));
        for i in 0..self.k.min(self.n - 1) {
            state = mix(state);
            let j = i + (state as usize) % (self.n - i);
            ids.swap(i, j);
        }
    }
}

impl OnSchedule for RandomOnSchedule {
    fn is_on(&self, station: StationId, round: Round) -> bool {
        let mut ids = self.scratch.lock().expect("schedule scratch poisoned");
        self.shuffle_into(round, &mut ids);
        ids[..self.k].contains(&station)
    }

    fn on_set_into(&self, _n: usize, round: Round, out: &mut Vec<StationId>) {
        let mut ids = self.scratch.lock().expect("schedule scratch poisoned");
        self.shuffle_into(round, &mut ids);
        out.clear();
        out.extend_from_slice(&ids[..self.k]);
        out.sort_unstable();
    }

    /// Explicitly aperiodic: the round number feeds the mixing function,
    /// so no finite period exists and the engine must keep enumerating
    /// per round (the shuffle scratch keeps that path allocation-free).
    fn period(&self) -> Option<u64> {
        None
    }
}

/// Per-station protocol: transmit the oldest packet with probability 1/2
/// whenever on with a non-empty queue.
pub struct DutyCycleStation {
    seed: u64,
}

impl Protocol for DutyCycleStation {
    fn act(&mut self, ctx: &ProtocolCtx, queue: &IndexedQueue) -> Action {
        if let Some(qp) = queue.oldest() {
            let coin = mix(self.seed ^ mix(ctx.id as u64) ^ ctx.round);
            if coin & 1 == 1 {
                return Action::Transmit(Message::plain(qp.packet));
            }
        }
        Action::Listen
    }

    fn on_feedback(
        &mut self,
        _ctx: &ProtocolCtx,
        _queue: &IndexedQueue,
        _fb: Feedback<'_>,
        _effects: &mut Effects,
    ) -> Wake {
        Wake::Stay
    }
}

/// The uncoordinated baseline with energy cap `k`.
#[derive(Clone, Copy, Debug)]
pub struct DutyCycle {
    /// Energy cap (exactly `k` stations on per round).
    pub k: usize,
    /// Schedule/coin seed.
    pub seed: u64,
}

impl DutyCycle {
    /// Baseline with cap `k` and seed 0.
    pub fn new(k: usize) -> Self {
        Self { k, seed: 0 }
    }

    /// Baseline with an explicit seed.
    pub fn seeded(k: usize, seed: u64) -> Self {
        Self { k, seed }
    }
}

impl Algorithm for DutyCycle {
    fn name(&self) -> String {
        format!("DutyCycle-baseline(k={})", self.k)
    }

    fn class(&self) -> AlgorithmClass {
        // Oblivious and plain-packet; "direct" in that it never relays —
        // but unlike the paper's algorithms it LOSES packets.
        AlgorithmClass::OBL_PP_DIR
    }

    fn required_cap(&self, n: usize) -> usize {
        self.k.min(n)
    }

    fn build(&self, n: usize) -> BuiltAlgorithm {
        let schedule: Arc<dyn OnSchedule> =
            Arc::new(RandomOnSchedule::new(n, self.k.min(n), self.seed));
        BuiltAlgorithm {
            name: format!("{}(n={n})", self.name()),
            protocols: (0..n)
                .map(|s| {
                    Box::new(DutyCycleStation { seed: mix(self.seed ^ s as u64) })
                        as Box<dyn Protocol>
                })
                .collect(),
            wake: WakeMode::Scheduled(schedule),
            class: self.class(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use emac_adversary::UniformRandom;
    use emac_sim::Rate;

    #[test]
    fn schedule_is_exactly_k_wide_and_deterministic() {
        let s = RandomOnSchedule::new(10, 4, 7);
        for r in 0..200 {
            let on = s.on_set(10, r);
            assert_eq!(on.len(), 4, "round {r}");
            assert!(on.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            assert!(on.iter().all(|&x| x < 10));
            assert_eq!(on, RandomOnSchedule::new(10, 4, 7).on_set(10, r), "deterministic");
        }
        // different rounds give different sets (overwhelmingly)
        assert_ne!(s.on_set(10, 0), s.on_set(10, 1));
    }

    #[test]
    fn schedule_covers_all_stations_over_time() {
        let s = RandomOnSchedule::new(8, 3, 1);
        let mut seen = [false; 8];
        for r in 0..200 {
            for st in s.on_set(8, r) {
                seen[st] = true;
            }
        }
        assert!(seen.iter().all(|&x| x), "every station gets scheduled");
    }

    #[test]
    fn baseline_loses_packets_and_collides() {
        // The point of the baseline: at a load the paper's cap-4 algorithms
        // handle cleanly, uncoordinated duty-cycling drops traffic.
        let report = Runner::new(8)
            .rate(Rate::new(1, 10))
            .beta(2)
            .rounds(50_000)
            .run(&DutyCycle::new(4), Box::new(UniformRandom::new(3)));
        assert!(report.metrics.max_awake <= 4);
        let v = &report.violations;
        assert!(v.packets_lost > 0, "losses are the expected failure mode");
        assert!(v.collisions > 0, "collisions are the expected failure mode");
        // it does deliver *something* (dest occasionally awake)
        assert!(report.metrics.delivered > 0);
        assert!(report.metrics.delivered < report.metrics.injected);
    }
}
