//! High-level experiment runner.
//!
//! Wraps the simulator in the workflow every experiment shares: build the
//! algorithm, wire an adversary (possibly one that inspects the oblivious
//! schedule, as the lower-bound constructions do), run for a number of
//! rounds, optionally drain, and classify stability.

use std::sync::Arc;

use emac_sim::{Adversary, Metrics, OnSchedule, Rate, SimConfig, Simulator, Violations, WakeMode};

use crate::algorithm::Algorithm;
use crate::stability::{classify, StabilityReport};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Runner {
    n: usize,
    rho: Rate,
    beta: Rate,
    rounds: u64,
    sample_every: u64,
    cap_override: Option<usize>,
    drain_rounds: Option<u64>,
    probe_cap: Option<u64>,
}

impl Runner {
    /// Runner for `n` stations with defaults: `ρ = 1/2`, `β = 1`, 100 000
    /// rounds, no drain phase.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            rho: Rate::new(1, 2),
            beta: Rate::integer(1),
            rounds: 100_000,
            sample_every: 0, // derived from rounds when 0
            cap_override: None,
            drain_rounds: None,
            probe_cap: None,
        }
    }

    /// Set the injection rate ρ.
    pub fn rate(mut self, rho: Rate) -> Self {
        self.rho = rho;
        self
    }

    /// Set the burstiness coefficient β. Accepts anything convertible to a
    /// [`Rate`]: an integer (`.beta(2)`) as before, or a general rational
    /// (`.beta(Rate::new(3, 2))`) matching the paper's β ∈ ℚ and
    /// `SimConfig`.
    pub fn beta(mut self, beta: impl Into<Rate>) -> Self {
        self.beta = beta.into();
        self
    }

    /// Set the number of rounds to simulate.
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Override the energy cap (default: the algorithm's requirement).
    pub fn cap(mut self, cap: usize) -> Self {
        self.cap_override = Some(cap);
        self
    }

    /// After the main run, stop injections and let the system drain for at
    /// most this many rounds, recording whether it emptied.
    pub fn drain(mut self, max_rounds: u64) -> Self {
        self.drain_rounds = Some(max_rounds);
        self
    }

    /// Run as a stability *probe*: stop early once the total queued packets
    /// exceed `queue_cap` and classify the run as [`Verdict::Diverging`].
    /// Above-boundary probes then cost a fraction of the full horizon — the
    /// knob the frontier bisection leans on. Stable runs are unaffected
    /// (the cap must sit far above the scenario's steady-state queue).
    ///
    /// [`Verdict::Diverging`]: crate::stability::Verdict::Diverging
    pub fn probe_cap(mut self, queue_cap: u64) -> Self {
        self.probe_cap = Some(queue_cap);
        self
    }

    /// Run `algorithm` against a fixed adversary.
    pub fn run(&self, algorithm: &dyn Algorithm, adversary: Box<dyn Adversary>) -> RunReport {
        self.run_against(algorithm, |_| adversary)
    }

    /// Run `algorithm` against an adversary built from the algorithm's
    /// oblivious schedule (`None` for adaptive algorithms) — the entry
    /// point for the Theorem 6 / Theorem 9 attack adversaries.
    pub fn run_against(
        &self,
        algorithm: &dyn Algorithm,
        make_adversary: impl FnOnce(Option<&Arc<dyn OnSchedule>>) -> Box<dyn Adversary>,
    ) -> RunReport {
        let run: Result<RunReport, std::convert::Infallible> =
            self.try_run_against(algorithm, |s| Ok(make_adversary(s)));
        match run {
            Ok(report) => report,
        }
    }

    /// Like [`Runner::run_against`], but the adversary constructor may fail
    /// (e.g. a name registry rejecting a schedule-aware adversary for an
    /// adaptive algorithm). Nothing is simulated when it does.
    pub fn try_run_against<E>(
        &self,
        algorithm: &dyn Algorithm,
        make_adversary: impl FnOnce(Option<&Arc<dyn OnSchedule>>) -> Result<Box<dyn Adversary>, E>,
    ) -> Result<RunReport, E> {
        let cap = self.cap_override.unwrap_or_else(|| algorithm.required_cap(self.n));
        let sample =
            if self.sample_every == 0 { (self.rounds / 2_048).max(1) } else { self.sample_every };
        let cfg =
            SimConfig::new(self.n, cap).adversary_type(self.rho, self.beta).sample_every(sample);
        let built = algorithm.build(self.n);
        let adversary = match &built.wake {
            WakeMode::Scheduled(s) => make_adversary(Some(s))?,
            WakeMode::Adaptive => make_adversary(None)?,
        };
        let name = built.name.clone();
        let mut sim = Simulator::new(cfg, built, adversary);
        let tripped = match self.probe_cap {
            Some(queue_cap) => sim.run_probe(self.rounds, queue_cap),
            None => {
                sim.run(self.rounds);
                false
            }
        };
        let drained = self.drain_rounds.map(|max| sim.run_until_drained(max));
        let metrics = sim.metrics().clone();
        let mut stability = classify(&metrics);
        if tripped {
            // The probe cap is evidence of divergence in itself; a tripped
            // run may have too few samples for the slope classifier.
            stability.verdict = crate::stability::Verdict::Diverging;
        }
        Ok(RunReport {
            algorithm: name,
            n: self.n,
            cap,
            rho: self.rho,
            beta: self.beta,
            rounds: self.rounds,
            stability,
            metrics,
            violations: sim.violations().clone(),
            drained,
        })
    }
}

/// Everything measured over one experiment run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Algorithm display name.
    pub algorithm: String,
    /// System size.
    pub n: usize,
    /// Energy cap in force.
    pub cap: usize,
    /// Adversary injection rate.
    pub rho: Rate,
    /// Adversary burstiness.
    pub beta: Rate,
    /// Rounds simulated (excluding any drain phase).
    pub rounds: u64,
    /// Raw metrics.
    pub metrics: Metrics,
    /// Invariant violations (empty for a correct run).
    pub violations: Violations,
    /// Stability classification.
    pub stability: StabilityReport,
    /// Whether the system drained, when a drain phase was requested.
    pub drained: Option<bool>,
}

impl RunReport {
    /// Maximum packet delay (the paper's latency measure).
    pub fn latency(&self) -> u64 {
        self.metrics.delay.max()
    }

    /// Maximum total queued packets (the paper's queue-size measure).
    pub fn max_queue(&self) -> u64 {
        self.metrics.max_total_queued
    }

    /// Whether the run respected every model invariant.
    pub fn clean(&self) -> bool {
        self.violations.is_clean()
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} | n={} cap={} rho={} beta={} rounds={}",
            self.algorithm, self.n, self.cap, self.rho, self.beta, self.rounds
        )?;
        writeln!(
            f,
            "  delivered {}/{} | latency max {} mean {:.1} | queue max {} | energy/round {:.2}",
            self.metrics.delivered,
            self.metrics.injected,
            self.latency(),
            self.metrics.delay.mean(),
            self.max_queue(),
            self.metrics.energy_per_round()
        )?;
        write!(f, "  stability: {} | invariants: {}", self.stability, self.violations)?;
        if let Some(d) = self.drained {
            write!(f, " | drained: {}", if d { "yes" } else { "NO" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_hop::CountHop;
    use crate::k_cycle::KCycle;
    use crate::stability::Verdict;
    use emac_adversary::{LeastOnStation, UniformRandom};

    #[test]
    fn runs_adaptive_algorithm_end_to_end() {
        let report = Runner::new(4)
            .rate(Rate::new(1, 2))
            .beta(2)
            .rounds(20_000)
            .drain(5_000)
            .run(&CountHop::new(), Box::new(UniformRandom::new(1)));
        assert!(report.clean(), "{}", report.violations);
        assert_eq!(report.cap, 2);
        assert_eq!(report.stability.verdict, Verdict::Stable);
        assert_eq!(report.drained, Some(true));
        assert_eq!(report.metrics.delivered, report.metrics.injected);
        // Display smoke test
        let text = report.to_string();
        assert!(text.contains("Count-Hop"));
        assert!(text.contains("Stable"));
    }

    #[test]
    fn schedule_reaches_attack_adversaries() {
        let alg = KCycle::new(3);
        let report = Runner::new(9)
            .rate(Rate::new(5, 12)) // > k/n = 1/3
            .beta(2)
            .rounds(60_000)
            .run_against(&alg, |schedule| {
                let s = schedule.expect("k-Cycle is oblivious").clone();
                Box::new(LeastOnStation::new(&s, 9, 10_000))
            });
        assert_eq!(report.stability.verdict, Verdict::Diverging, "{report}");
    }
}
