//! High-level experiment runner.
//!
//! Wraps the simulator in the workflow every experiment shares: build the
//! algorithm, wire an adversary (possibly one that inspects the oblivious
//! schedule, as the lower-bound constructions do), run for a number of
//! rounds, optionally drain, and classify stability.

use std::sync::Arc;

use emac_sim::{
    Adversary, BatchSimulator, FaultSpec, Metrics, OnSchedule, Rate, SimConfig, Simulator,
    Violations, WakeMode,
};

use crate::algorithm::Algorithm;
use crate::stability::{classify, StabilityReport};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Runner {
    n: usize,
    rho: Rate,
    beta: Rate,
    rounds: u64,
    sample_every: u64,
    cap_override: Option<usize>,
    drain_rounds: Option<u64>,
    probe_cap: Option<u64>,
    faults: Option<FaultSpec>,
}

impl Runner {
    /// Runner for `n` stations with defaults: `ρ = 1/2`, `β = 1`, 100 000
    /// rounds, no drain phase.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            rho: Rate::new(1, 2),
            beta: Rate::integer(1),
            rounds: 100_000,
            sample_every: 0, // derived from rounds when 0
            cap_override: None,
            drain_rounds: None,
            probe_cap: None,
            faults: None,
        }
    }

    /// Set the injection rate ρ.
    pub fn rate(mut self, rho: Rate) -> Self {
        self.rho = rho;
        self
    }

    /// Set the burstiness coefficient β. Accepts anything convertible to a
    /// [`Rate`]: an integer (`.beta(2)`) as before, or a general rational
    /// (`.beta(Rate::new(3, 2))`) matching the paper's β ∈ ℚ and
    /// `SimConfig`.
    pub fn beta(mut self, beta: impl Into<Rate>) -> Self {
        self.beta = beta.into();
        self
    }

    /// Set the number of rounds to simulate.
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Override the energy cap (default: the algorithm's requirement).
    pub fn cap(mut self, cap: usize) -> Self {
        self.cap_override = Some(cap);
        self
    }

    /// After the main run, stop injections and let the system drain for at
    /// most this many rounds, recording whether it emptied.
    pub fn drain(mut self, max_rounds: u64) -> Self {
        self.drain_rounds = Some(max_rounds);
        self
    }

    /// Run as a stability *probe*: stop early once the total queued packets
    /// exceed `queue_cap` and classify the run as [`Verdict::Diverging`].
    /// Above-boundary probes then cost a fraction of the full horizon — the
    /// knob the frontier bisection leans on. Stable runs are unaffected
    /// (the cap must sit far above the scenario's steady-state queue).
    ///
    /// [`Verdict::Diverging`]: crate::stability::Verdict::Diverging
    pub fn probe_cap(mut self, queue_cap: u64) -> Self {
        self.probe_cap = Some(queue_cap);
        self
    }

    /// Inject deterministic faults (jamming, crash/restart, deaf rounds,
    /// clock skew) described by `spec`; see [`emac_sim::faults`]. The fault
    /// stream is derived from `spec.seed`, never the scenario seed, so every
    /// batch lane sees the identical fault schedule.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Run `algorithm` against a fixed adversary.
    pub fn run(&self, algorithm: &dyn Algorithm, adversary: Box<dyn Adversary>) -> RunReport {
        self.run_against(algorithm, |_| adversary)
    }

    /// Run `algorithm` against an adversary built from the algorithm's
    /// oblivious schedule (`None` for adaptive algorithms) — the entry
    /// point for the Theorem 6 / Theorem 9 attack adversaries.
    pub fn run_against(
        &self,
        algorithm: &dyn Algorithm,
        make_adversary: impl FnOnce(Option<&Arc<dyn OnSchedule>>) -> Box<dyn Adversary>,
    ) -> RunReport {
        let run: Result<RunReport, std::convert::Infallible> =
            self.try_run_against(algorithm, |s| Ok(make_adversary(s)));
        match run {
            Ok(report) => report,
        }
    }

    /// Like [`Runner::run_against`], but the adversary constructor may fail
    /// (e.g. a name registry rejecting a schedule-aware adversary for an
    /// adaptive algorithm). Nothing is simulated when it does.
    pub fn try_run_against<E>(
        &self,
        algorithm: &dyn Algorithm,
        make_adversary: impl FnOnce(Option<&Arc<dyn OnSchedule>>) -> Result<Box<dyn Adversary>, E>,
    ) -> Result<RunReport, E> {
        let cap = self.cap_override.unwrap_or_else(|| algorithm.required_cap(self.n));
        let sample =
            if self.sample_every == 0 { (self.rounds / 2_048).max(1) } else { self.sample_every };
        let mut cfg =
            SimConfig::new(self.n, cap).adversary_type(self.rho, self.beta).sample_every(sample);
        if let Some(f) = &self.faults {
            cfg = cfg.faults(f.clone());
        }
        let built = algorithm.build(self.n);
        let adversary = match &built.wake {
            WakeMode::Scheduled(s) => make_adversary(Some(s))?,
            WakeMode::Adaptive => make_adversary(None)?,
        };
        let name = built.name.clone();
        let mut sim = Simulator::new(cfg, built, adversary);
        let tripped_round = match self.probe_cap {
            Some(queue_cap) => sim.run_probe_round(self.rounds, queue_cap),
            None => {
                sim.run(self.rounds);
                None
            }
        };
        let drained = self.drain_rounds.map(|max| sim.run_until_drained(max));
        Ok(self.lane_report(name, cap, tripped_round, drained, &sim))
    }

    /// Run one scenario under every seed in `seeds` as a lockstep
    /// [`BatchSimulator`] — one report per seed, in seed order. Lane `i` is
    /// digest-identical to a solo [`Runner::try_run_against`] of the same
    /// scenario with seed `seeds[i]`: the closures receive the seed and
    /// must build the algorithm and adversary exactly as the solo run
    /// would. With [`Runner::probe_cap`] set, lanes that trip early drop
    /// out without stalling the rest of the batch and report their
    /// tripping round.
    ///
    /// Fails (without simulating) when `seeds` is empty, a constructor
    /// fails, or the seeds disagree on the algorithm's energy cap.
    pub fn try_run_batch(
        &self,
        seeds: &[u64],
        mut make_algorithm: impl FnMut(u64) -> Result<Box<dyn Algorithm>, String>,
        mut make_adversary: impl FnMut(
            u64,
            Option<&Arc<dyn OnSchedule>>,
        ) -> Result<Box<dyn Adversary>, String>,
    ) -> Result<Vec<RunReport>, String> {
        if seeds.is_empty() {
            return Err("a seed batch needs at least one seed".into());
        }
        let sample =
            if self.sample_every == 0 { (self.rounds / 2_048).max(1) } else { self.sample_every };
        let mut lanes = Vec::with_capacity(seeds.len());
        let mut names = Vec::with_capacity(seeds.len());
        let mut cap = None;
        for &seed in seeds {
            let algorithm = make_algorithm(seed)?;
            let lane_cap = self.cap_override.unwrap_or_else(|| algorithm.required_cap(self.n));
            match cap {
                None => cap = Some(lane_cap),
                Some(c) if c != lane_cap => {
                    return Err(format!(
                        "seed {seed} asks for energy cap {lane_cap}, other lanes use {c}"
                    ));
                }
                Some(_) => {}
            }
            let mut cfg = SimConfig::new(self.n, lane_cap)
                .adversary_type(self.rho, self.beta)
                .sample_every(sample);
            if let Some(f) = &self.faults {
                cfg = cfg.faults(f.clone());
            }
            let built = algorithm.build(self.n);
            let adversary = match &built.wake {
                WakeMode::Scheduled(s) => make_adversary(seed, Some(s))?,
                WakeMode::Adaptive => make_adversary(seed, None)?,
            };
            names.push(built.name.clone());
            lanes.push(Simulator::new(cfg, built, adversary));
        }
        let cap = cap.expect("at least one seed");
        let mut batch = BatchSimulator::new(lanes);
        let tripped: Vec<Option<u64>> = match self.probe_cap {
            Some(queue_cap) => batch.run_probe(self.rounds, queue_cap),
            None => {
                batch.run(self.rounds);
                vec![None; seeds.len()]
            }
        };
        let drained: Vec<Option<bool>> = match self.drain_rounds {
            Some(max) => batch.run_until_drained(max).into_iter().map(Some).collect(),
            None => vec![None; seeds.len()],
        };
        Ok(batch
            .into_lanes()
            .iter()
            .zip(names)
            .zip(tripped.iter().zip(drained))
            .map(|((lane, name), (&tripped_round, drained))| {
                self.lane_report(name, cap, tripped_round, drained, lane)
            })
            .collect())
    }

    /// Infallible [`Runner::try_run_batch`]: seed-indexed constructors that
    /// always succeed. Panics on an empty seed list or a cap mismatch.
    pub fn run_batch(
        &self,
        seeds: &[u64],
        mut make_algorithm: impl FnMut(u64) -> Box<dyn Algorithm>,
        mut make_adversary: impl FnMut(u64, Option<&Arc<dyn OnSchedule>>) -> Box<dyn Adversary>,
    ) -> Vec<RunReport> {
        self.try_run_batch(
            seeds,
            |seed| Ok(make_algorithm(seed)),
            |seed, schedule| Ok(make_adversary(seed, schedule)),
        )
        .expect("infallible batch constructors")
    }

    /// [`Runner::run_batch`] as a stability probe: requires
    /// [`Runner::probe_cap`] to be set (panics otherwise), so every lane
    /// early-exits the moment its queues pass the cap.
    pub fn probe_batch(
        &self,
        seeds: &[u64],
        make_algorithm: impl FnMut(u64) -> Box<dyn Algorithm>,
        make_adversary: impl FnMut(u64, Option<&Arc<dyn OnSchedule>>) -> Box<dyn Adversary>,
    ) -> Vec<RunReport> {
        assert!(self.probe_cap.is_some(), "probe_batch requires a probe_cap");
        self.run_batch(seeds, make_algorithm, make_adversary)
    }

    /// Classify one finished simulator into a [`RunReport`] (shared by the
    /// solo and batch paths so their reports are field-for-field alike).
    fn lane_report(
        &self,
        name: String,
        cap: usize,
        tripped_round: Option<u64>,
        drained: Option<bool>,
        sim: &Simulator,
    ) -> RunReport {
        let metrics = sim.metrics().clone();
        let mut stability = classify(&metrics);
        if tripped_round.is_some() {
            // The probe cap is evidence of divergence in itself; a tripped
            // run may have too few samples for the slope classifier.
            stability.verdict = crate::stability::Verdict::Diverging;
        }
        RunReport {
            algorithm: name,
            n: self.n,
            cap,
            rho: self.rho,
            beta: self.beta,
            rounds: self.rounds,
            stability,
            metrics,
            violations: sim.violations().clone(),
            drained,
            tripped_round,
        }
    }
}

/// Everything measured over one experiment run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Algorithm display name.
    pub algorithm: String,
    /// System size.
    pub n: usize,
    /// Energy cap in force.
    pub cap: usize,
    /// Adversary injection rate.
    pub rho: Rate,
    /// Adversary burstiness.
    pub beta: Rate,
    /// Rounds simulated (excluding any drain phase).
    pub rounds: u64,
    /// Raw metrics.
    pub metrics: Metrics,
    /// Invariant violations (empty for a correct run).
    pub violations: Violations,
    /// Stability classification.
    pub stability: StabilityReport,
    /// Whether the system drained, when a drain phase was requested.
    pub drained: Option<bool>,
    /// The round whose step tripped the probe cap, when the run was a
    /// probe and diverged. Probe telemetry only — deliberately **not**
    /// part of the report digest, which pins observable behaviour
    /// (metrics, violations, stability), not probe bookkeeping.
    pub tripped_round: Option<u64>,
}

impl RunReport {
    /// Maximum packet delay (the paper's latency measure).
    pub fn latency(&self) -> u64 {
        self.metrics.delay.max()
    }

    /// Maximum total queued packets (the paper's queue-size measure).
    pub fn max_queue(&self) -> u64 {
        self.metrics.max_total_queued
    }

    /// Whether the run respected every model invariant.
    pub fn clean(&self) -> bool {
        self.violations.is_clean()
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} | n={} cap={} rho={} beta={} rounds={}",
            self.algorithm, self.n, self.cap, self.rho, self.beta, self.rounds
        )?;
        writeln!(
            f,
            "  delivered {}/{} | latency max {} mean {:.1} | queue max {} | energy/round {:.2}",
            self.metrics.delivered,
            self.metrics.injected,
            self.latency(),
            self.metrics.delay.mean(),
            self.max_queue(),
            self.metrics.energy_per_round()
        )?;
        write!(f, "  stability: {} | invariants: {}", self.stability, self.violations)?;
        if let Some(d) = self.drained {
            write!(f, " | drained: {}", if d { "yes" } else { "NO" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_hop::CountHop;
    use crate::k_cycle::KCycle;
    use crate::stability::Verdict;
    use emac_adversary::{LeastOnStation, UniformRandom};

    #[test]
    fn runs_adaptive_algorithm_end_to_end() {
        let report = Runner::new(4)
            .rate(Rate::new(1, 2))
            .beta(2)
            .rounds(20_000)
            .drain(5_000)
            .run(&CountHop::new(), Box::new(UniformRandom::new(1)));
        assert!(report.clean(), "{}", report.violations);
        assert_eq!(report.cap, 2);
        assert_eq!(report.stability.verdict, Verdict::Stable);
        assert_eq!(report.drained, Some(true));
        assert_eq!(report.metrics.delivered, report.metrics.injected);
        // Display smoke test
        let text = report.to_string();
        assert!(text.contains("Count-Hop"));
        assert!(text.contains("Stable"));
    }

    #[test]
    fn schedule_reaches_attack_adversaries() {
        let alg = KCycle::new(3);
        let report = Runner::new(9)
            .rate(Rate::new(5, 12)) // > k/n = 1/3
            .beta(2)
            .rounds(60_000)
            .run_against(&alg, |schedule| {
                let s = schedule.expect("k-Cycle is oblivious").clone();
                Box::new(LeastOnStation::new(&s, 9, 10_000))
            });
        assert_eq!(report.stability.verdict, Verdict::Diverging, "{report}");
    }
}
