//! Verdict-flip bands and adaptive seed escalation, end to end.
//!
//! Pinned contracts on top of `tests/frontier_seeds.rs` and the unit
//! tests in `emac-core`:
//!
//! 1. identical-seed ensembles collapse: `band_lo == band_hi ==
//!    boundary`, agreement exactly 1, and the legacy columns are the
//!    solo map byte-for-byte;
//! 2. a deliberately disagreeing ensemble (seeds straddling the
//!    spread-from-one-rand drift window at n=9, k=3, 16k rounds)
//!    produces a nonempty band that brackets the majority boundary,
//!    with escalation engaged and agreement strictly below 1;
//! 3. ensemble maps are byte-identical across thread counts;
//! 4. a mid-map kill + resume replays the escalation events out of
//!    `frontier.ckpt` — lane tallies included — to byte-identical
//!    output without re-running any probe.

use emac::registry::Registry;
use emac_core::frontier::{
    CsvMapSink, Frontier, FrontierCheckpoint, FrontierSpec, FrontierSummary,
};

/// One map point whose stability threshold sits inside the seed-noise
/// window at 16k rounds — the n=9 point of
/// `specs/frontier_theorem5_band.json`: lanes genuinely disagree near
/// 1/5, so the band is nonempty and escalation has real work to do.
const DISAGREEING: &str = r#"{
  "template": {"algorithm": "k-cycle", "adversary": "spread-from-one-rand",
               "target": 1, "beta": "1", "rounds": 16000, "probe_cap": 2000},
  "axis": "rho",
  "lo": "0.5 * group_share",
  "hi": "1.25 * k_cycle_threshold",
  "tol": 0.0005,
  "map": {"n": [9], "k": [3]},
  "seeds": [1, 2, 3, 4, 5],
  "escalate": {"max_seeds": 9, "step": 2}
}"#;

/// The committed band spec: adds the n=13 continuation point, whose
/// bisection trips escalation mid-map (not just on its final wave) —
/// which is what makes the kill/resume test able to capture a recorded
/// escalation event inside the interrupt window.
const CONTINUED: &str = r#"{
  "template": {"algorithm": "k-cycle", "adversary": "spread-from-one-rand",
               "target": 1, "beta": "1", "rounds": 16000, "probe_cap": 2000},
  "axis": "rho",
  "lo": "0.5 * group_share",
  "hi": "1.25 * k_cycle_threshold",
  "tol": 0.0005,
  "map": {"n": [9, 13], "k": [3]},
  "seeds": [1, 2, 3, 4, 5],
  "escalate": {"max_seeds": 9, "step": 2},
  "continuation": "n"
}"#;

fn run(spec: &FrontierSpec, threads: usize) -> (String, FrontierSummary) {
    let mut sink = CsvMapSink::new(Vec::new());
    let summary =
        Frontier::new().threads(threads).run_into(spec, &Registry, &mut sink, None).unwrap();
    (String::from_utf8(sink.into_inner()).unwrap(), summary)
}

fn band_fields(row: &str) -> (f64, f64, f64, f64) {
    let fields: Vec<&str> = row.split(',').collect();
    assert_eq!(fields.len(), 11, "ensemble rows carry band_lo,band_hi,agreement: {row}");
    let f = |i: usize| fields[i].parse::<f64>().unwrap();
    (f(5), f(8), f(9), f(10)) // boundary, band_lo, band_hi, agreement
}

#[test]
fn identical_seed_ensemble_bands_are_degenerate_and_project_to_the_solo_map() {
    let template = r#"{
      "template": {"algorithm": "k-cycle", "adversary": "spread-from-one",
                   "target": 1, "beta": "1", "rounds": 8000, "probe_cap": 800, "seed": 7},
      "axis": "rho", "lo": "0.5 * group_share", "hi": "1.25 * k_cycle_threshold",
      "tol": 0.0625, "map": {"n": [9], "k": [3]}SEEDS
    }"#;
    let solo = FrontierSpec::parse(&template.replace("SEEDS", "")).unwrap();
    let ensemble =
        FrontierSpec::parse(&template.replace("SEEDS", ", \"seeds\": [7, 7, 7, 7]")).unwrap();

    let (solo_map, _) = run(&solo, 1);
    let (ensemble_map, _) = run(&ensemble, 1);
    for (solo_line, band_line) in solo_map.lines().zip(ensemble_map.lines()) {
        let fields: Vec<&str> = band_line.split(',').collect();
        assert_eq!(fields[..8].join(","), solo_line, "legacy columns must match the solo map");
    }
    for row in ensemble_map.lines().skip(1) {
        let (boundary, lo, hi, agreement) = band_fields(row);
        assert_eq!(lo, boundary, "identical lanes cannot produce a band: {row}");
        assert_eq!(hi, boundary, "identical lanes cannot produce a band: {row}");
        assert_eq!(agreement, 1.0, "identical lanes agree exactly: {row}");
    }
}

#[test]
fn disagreeing_ensemble_produces_a_nonempty_band_with_escalation() {
    let spec = FrontierSpec::parse(DISAGREEING).unwrap();
    let (map, summary) = run(&spec, 2);
    assert_eq!(summary.completed, 1);
    assert!(
        summary.escalated_probes > 0,
        "near-boundary probes must trip escalation ({} probes, 0 escalated)",
        summary.probes_run
    );

    let row = map.lines().nth(1).unwrap();
    let (boundary, lo, hi, agreement) = band_fields(row);
    assert!(lo < hi, "straddling seeds must leave a nonempty band: {row}");
    assert!(lo <= boundary && boundary <= hi, "band must bracket the boundary: {row}");
    assert!(agreement < 1.0, "a nonempty band implies imperfect agreement: {row}");
    assert!(agreement > 0.5, "the majority verdict still dominates: {row}");
    // The drift window sits on the group share 1/5, well below the
    // claimed (k-1)/(n-1) = 1/4 — the band-level form of the headline
    // reproduction finding.
    assert!(lo <= 0.2 && 0.2 <= hi, "band must contain 1/l = 0.2: {row}");
    assert!(hi < 0.25, "band must exclude the claimed 1/4 region: {row}");
}

#[test]
fn band_maps_are_byte_identical_across_thread_counts() {
    let spec = FrontierSpec::parse(DISAGREEING).unwrap();
    let (serial, _) = run(&spec, 1);
    assert_eq!(serial, run(&spec, 4).0, "band map must not depend on the thread count");
}

#[test]
fn killed_band_map_resumes_by_replaying_escalation_events_byte_identically() {
    let spec = FrontierSpec::parse(CONTINUED).unwrap();
    let (uninterrupted, fresh) = run(&spec, 2);

    let dir = std::env::temp_dir().join(format!("emac-frontier-bands-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt_path = dir.join("frontier.ckpt");
    let digest = spec.digest("csv");
    let points = spec.points().len();

    // Phase 1: kill after 17 waves — past the n=9 row (so the resume
    // exercises the row-appending path) and past the first escalated
    // probe of the n=13 continuation point, but mid-bisection.
    let mut ckpt = FrontierCheckpoint::fresh(&ckpt_path, digest, points).unwrap();
    let mut sink = CsvMapSink::new(Vec::new());
    let partial = Frontier::new()
        .threads(2)
        .max_waves(17)
        .run_into(&spec, &Registry, &mut sink, Some(&mut ckpt))
        .unwrap();
    assert!(partial.completed < points, "17 waves cannot finish both tol-0.0005 bisections");
    let part1 = String::from_utf8(sink.into_inner()).unwrap();
    let rows_done = ckpt.rows_written();
    drop(ckpt);

    // The checkpoint must carry the ensemble tallies: every probe of an
    // ensemble map records its (diverging, lanes) split, and escalated
    // probes record the widened lane count.
    let mut ckpt = FrontierCheckpoint::resume(&ckpt_path, digest, points).unwrap();
    let probes_before_resume = ckpt.probes().len();
    assert!(probes_before_resume > 0);
    for rec in ckpt.probes() {
        let (diverging, lanes) = rec.lanes.expect("ensemble probes record lane tallies");
        assert!(diverging <= lanes);
        assert!(lanes >= spec.seeds.len(), "lanes can only grow from the base ensemble");
        assert!(lanes <= 9, "escalation must respect max_seeds");
    }
    let escalated = ckpt.probes().iter().filter(|r| r.lanes.unwrap().1 > spec.seeds.len()).count();
    assert!(escalated > 0, "the kill window must capture at least one escalation event");

    // Phase 2: resume — replay, don't re-run.
    let mut sink =
        if rows_done > 0 { CsvMapSink::appending(Vec::new()) } else { CsvMapSink::new(Vec::new()) };
    let resumed =
        Frontier::new().threads(2).run_into(&spec, &Registry, &mut sink, Some(&mut ckpt)).unwrap();
    assert_eq!(resumed.completed, points);
    let part2 = String::from_utf8(sink.into_inner()).unwrap();

    let stitched = if rows_done > 0 {
        format!("{part1}{part2}")
    } else {
        assert!(part1.is_empty());
        part2
    };
    assert_eq!(stitched, uninterrupted, "resume must reproduce the uninterrupted bytes");

    // Replay conservation: both phases together do exactly one run's work.
    assert_eq!(
        probes_before_resume + resumed.probes_run,
        fresh.probes_run,
        "no probe re-executed, none skipped"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
