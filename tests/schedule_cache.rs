//! Property tests for the periodic schedule cache.
//!
//! The engine replaces per-round `OnSchedule::on_set_into` with a packed
//! [`ScheduleTable`] row copy whenever a schedule declares a period. That
//! substitution is only sound if (a) the declared period is honest —
//! `on_set(r)` equals `on_set(r mod period)` for every round — and (b) the
//! expanded table reproduces the direct enumeration bit for bit. This test
//! checks both for **every oblivious algorithm in the registry**, over
//! three full periods, comparing the mask row, the on-set row, and the
//! per-station `is_on` ground truth.

use std::sync::Arc;

use emac::registry::Registry;
use emac_core::campaign::ScenarioSpec;
use emac_sim::{BitSet, OnSchedule, ScheduleTable, WakeMode};

/// Build an algorithm by registry name and return its oblivious schedule.
fn schedule_of(alg: &str, n: usize, k: usize) -> Arc<dyn OnSchedule> {
    let mut spec = ScenarioSpec::new(alg, "none");
    spec.n = n;
    spec.k = k;
    let built = Registry::make_algorithm(&spec).expect("registry name").build(n);
    match built.wake {
        WakeMode::Scheduled(s) => s,
        WakeMode::Adaptive => panic!("{alg} should be energy-oblivious"),
    }
}

#[test]
fn cached_table_equals_direct_enumeration_for_every_registry_schedule() {
    // Every periodic oblivious schedule the registry can hand out, at
    // several geometries, including n > 64 (two mask words per row).
    let cases: &[(&str, &[(usize, usize)])] = &[
        ("k-cycle", &[(5, 3), (9, 3), (16, 4), (65, 8)]),
        ("k-cycle:1/2", &[(9, 3), (16, 4)]),
        ("k-clique", &[(6, 4), (8, 4), (12, 4), (66, 4)]),
        ("k-subsets", &[(5, 2), (6, 3), (8, 4), (70, 2)]),
        ("k-subsets-rrw", &[(6, 3), (8, 4)]),
    ];
    for &(alg, geometries) in cases {
        for &(n, k) in geometries {
            let schedule = schedule_of(alg, n, k);
            let period = schedule
                .period()
                .unwrap_or_else(|| panic!("{alg}(n={n},k={k}) must declare its period"));
            let table = ScheduleTable::build(schedule.as_ref(), n)
                .unwrap_or_else(|| panic!("{alg}(n={n},k={k}) must fit the table budget"));
            assert_eq!(table.period(), period, "{alg}(n={n},k={k})");
            let mut mask = BitSet::new(n);
            let mut awake = vec![usize::MAX; 3]; // deliberately dirty
            let mut direct = Vec::new();
            for round in 0..3 * period {
                schedule.on_set_into(n, round, &mut direct);
                table.fill(round, &mut mask, &mut awake);
                assert_eq!(
                    awake, direct,
                    "{alg}(n={n},k={k}): cached on-set diverged at round {round}"
                );
                assert_eq!(
                    table.on_set_row(round),
                    &direct[..],
                    "{alg}(n={n},k={k}): row view diverged at round {round}"
                );
                for s in 0..n {
                    assert_eq!(
                        mask.contains(s),
                        schedule.is_on(s, round),
                        "{alg}(n={n},k={k}): mask bit for station {s} wrong at round {round}"
                    );
                }
            }
        }
    }
}

#[test]
fn duty_cycle_is_honestly_aperiodic() {
    // The pseudorandom baseline mixes the round number into its shuffle:
    // it must declare no period and therefore get no table — the engine
    // keeps the per-round enumeration path for it.
    let schedule = schedule_of("duty-cycle", 16, 4);
    assert_eq!(schedule.period(), None);
    assert!(ScheduleTable::build(schedule.as_ref(), 16).is_none());
}

#[test]
fn declared_periods_match_the_paper_geometry() {
    // gamma = C(6,3) = 20 for k-Subsets; m = 3 pairs for k-Clique at
    // (6,4); delta * l for k-Cycle at (9,3): delta = ceil(4*8*3/6) = 16,
    // l = ceil(9/2) = 5.
    assert_eq!(schedule_of("k-subsets", 6, 3).period(), Some(20));
    assert_eq!(schedule_of("k-clique", 6, 4).period(), Some(3));
    assert_eq!(schedule_of("k-cycle", 9, 3).period(), Some(16 * 5));
}
