//! Property-style sampled checks on fleet sharding (house stand-in for a
//! proptest dependency: a pinned xorshift stream drives the sampling, so
//! every run explores the same family deterministically).
//!
//! Invariants, over randomly drawn plans, slice layouts, and steal
//! interleavings:
//!
//! * however a campaign is sliced — empty slices, singleton slices,
//!   uncovered gaps that force stealing, and any interleaving of
//!   one-unit work steps across the runners — the merged bytes equal the
//!   single-process bytes;
//! * the same holds for a frontier map whose continuation chain spans
//!   the whole unit list;
//! * the claim table records every unit exactly once, no matter how many
//!   contending claimants race for it.

use std::path::PathBuf;

use emac::registry::Registry;
use emac_core::campaign::{Campaign, CsvStreamSink, MetricsDetail};
use emac_core::frontier::{CsvMapSink, Frontier, FrontierSpec};
use emac_core::shard::{merge, ClaimTable, ShardFormat, ShardPlan, ShardRunner};

/// xorshift64 — deterministic parameter scatter.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }
}

fn scratch(tag: &str, round: usize) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("emac-shard-prop-{}-{tag}-{round}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small random campaign: 4–9 scenarios over cheap algorithms.
fn sample_campaign(rng: &mut Rng) -> String {
    let count = 4 + rng.below(6) as usize;
    let rows: Vec<String> = (0..count)
        .map(|i| {
            let alg = rng.pick(&["count-hop", "k-cycle", "k-clique"]);
            let n = rng.pick(&[5usize, 6, 8]);
            let rho = rng.pick(&["1/8", "1/4", "3/8"]);
            let rounds = rng.pick(&[256u64, 512]);
            format!(
                r#"    {{"label": "s{i}", "algorithm": "{alg}", "adversary": "uniform",
     "n": {n}, "k": 2, "rho": "{rho}", "rounds": {rounds}, "seed": {}}}"#,
                rng.below(100)
            )
        })
        .collect();
    format!("{{\n  \"scenarios\": [\n{}\n  ]\n}}", rows.join(",\n"))
}

/// Randomize the slice layout: keep the ids but move each slice's bounds
/// inward by random amounts, producing empty slices, singletons, and
/// uncovered gaps that only work-stealing can pick up.
fn scramble_slices(plan: &mut ShardPlan, rng: &mut Rng) {
    let shards = plan.slices.len();
    let units = plan.units.len();
    let mut cuts: Vec<usize> = (0..=shards).map(|s| s * units / shards).collect();
    for cut in cuts.iter_mut().take(shards).skip(1) {
        *cut = (*cut + rng.below(2) as usize).min(units);
    }
    cuts.sort_unstable();
    for (s, slice) in plan.slices.iter_mut().enumerate() {
        slice.lo = cuts[s];
        slice.hi = cuts[s + 1];
        // Occasionally shrink the slice, leaving a gap nobody owns.
        if slice.hi > slice.lo && rng.below(3) == 0 {
            slice.hi -= 1;
        }
    }
}

/// Drive the runners one stolen-or-owned unit at a time, in a random
/// interleaving, until the claim table is exhausted.
fn run_interleaved(dir: &std::path::Path, plan: &ShardPlan, rng: &mut Rng) {
    let shards = plan.slices.len();
    let runners: Vec<ShardRunner> =
        (0..shards).map(|s| ShardRunner::new(dir, plan.clone(), s).unwrap()).collect();
    let mut started = vec![false; shards];
    loop {
        let s = rng.below(shards as u64) as usize;
        let summary = runners[s].run_with_limit(&Registry, started[s], 1).unwrap();
        started[s] = true;
        if summary.exhausted {
            break;
        }
    }
}

/// Every unit must end up claimed by exactly one shard.
fn assert_exactly_once(dir: &std::path::Path, plan: &ShardPlan) {
    let claims = ClaimTable::open(dir, plan.digest, plan.units.len()).unwrap();
    let mut seen = vec![0usize; plan.units.len()];
    for (unit, _) in claims.claims().unwrap() {
        seen[unit] += 1;
    }
    assert!(seen.iter().all(|&c| c == 1), "every unit claimed exactly once, got {seen:?}");
}

#[test]
fn random_slices_and_steal_interleavings_merge_to_single_process_bytes() {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    for round in 0..6 {
        let spec_text = sample_campaign(&mut rng);
        let shards = 1 + rng.below(4) as usize;
        let mut plan =
            ShardPlan::build(&spec_text, ShardFormat::Csv, MetricsDetail::Full, shards).unwrap();
        scramble_slices(&mut plan, &mut rng);

        let dir = scratch("campaign", round);
        plan.save(&dir).unwrap();
        run_interleaved(&dir, &plan, &mut rng);
        assert_exactly_once(&dir, &plan);

        let merged_path = dir.join("merged.csv");
        merge(&dir, &merged_path).unwrap();
        let merged = std::fs::read(&merged_path).unwrap();

        let specs = emac_core::campaign::parse_campaign_spec(&spec_text).unwrap();
        let mut sink = CsvStreamSink::new(Vec::new());
        Campaign::new().run_into(&specs, &Registry, &mut sink).unwrap();
        assert_eq!(
            merged,
            sink.into_inner(),
            "round {round}: {shards}-shard interleaved merge diverged from single-process"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn frontier_chains_survive_random_interleavings_byte_identically() {
    let mut rng = Rng(0x0dd_ba11);
    for round in 0..2 {
        let tol = rng.pick(&["0.05", "0.025"]);
        let continuation = if round == 0 { ",\n  \"continuation\": \"n\"" } else { "" };
        let spec_text = format!(
            r#"{{
  "template": {{"algorithm": "k-cycle", "adversary": "uniform",
               "rounds": 500, "probe_cap": 400}},
  "axis": "rho", "lo": "0", "hi": "1/2", "tol": {tol},
  "map": {{"n": [6, 9], "k": [2]}}{continuation}
}}"#
        );
        let shards = 2 + rng.below(2) as usize;
        let mut plan =
            ShardPlan::build(&spec_text, ShardFormat::Csv, MetricsDetail::Full, shards).unwrap();
        scramble_slices(&mut plan, &mut rng);

        let dir = scratch("frontier", round);
        plan.save(&dir).unwrap();
        run_interleaved(&dir, &plan, &mut rng);
        assert_exactly_once(&dir, &plan);

        let merged_path = dir.join("merged.csv");
        merge(&dir, &merged_path).unwrap();
        let merged = std::fs::read(&merged_path).unwrap();

        let spec = FrontierSpec::parse(&spec_text).unwrap();
        let mut sink = CsvMapSink::new(Vec::new());
        Frontier::new().run_into(&spec, &Registry, &mut sink, None).unwrap();
        assert_eq!(
            merged,
            sink.into_inner(),
            "round {round}: {shards}-shard frontier merge diverged from single-process"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn contending_claimants_leave_every_unit_claimed_exactly_once() {
    let mut rng = Rng(0xc1a1_3b1e);
    for round in 0..4 {
        let units = 3 + rng.below(14) as usize;
        let claimants = 2 + rng.below(5) as usize;
        let dir = scratch("claims", round);
        std::fs::create_dir_all(&dir).unwrap();
        ClaimTable::create(&dir, 0xfeed, units).unwrap();

        // Each claimant walks the units in its own random order.
        let orders: Vec<Vec<usize>> = (0..claimants)
            .map(|_| {
                let mut order: Vec<usize> = (0..units).collect();
                for i in (1..order.len()).rev() {
                    order.swap(i, (rng.next() % (i as u64 + 1)) as usize);
                }
                order
            })
            .collect();
        let wins: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..claimants)
                .map(|c| {
                    let order = &orders[c];
                    let dir = &dir;
                    scope.spawn(move || {
                        let table = ClaimTable::open(dir, 0xfeed, units).unwrap();
                        order.iter().filter(|&&u| table.try_claim(u, c).unwrap()).count()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            wins.iter().sum::<usize>(),
            units,
            "round {round}: wins {wins:?} must partition {units} units"
        );
        let table = ClaimTable::open(&dir, 0xfeed, units).unwrap();
        let mut seen = vec![0usize; units];
        for (unit, shard) in table.claims().unwrap() {
            assert!(shard < claimants);
            seen[unit] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "round {round}: log {seen:?}");
        for unit in 0..units {
            assert!(table.lease_owner(unit).unwrap().is_some(), "unit {unit} leased");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
