//! Observability-determinism suite: arming the event log and progress
//! line changes **zero** output bytes.
//!
//! Every case drives the real `emac` binary twice over the same spec —
//! once disarmed, once with `--progress --events` — and diffs the
//! output bytes. The registry-wide campaign grid must additionally still
//! digest to the pinned golden, so observability is provably outside the
//! digest path. Event logs themselves are held to the same standard as
//! the outputs: every line must round-trip through the minimal JSON
//! parser (`ObsReport::ingest` rejects malformed lines), probe counts
//! must exactly match what the run's checkpoint recorded (probe
//! conservation), and wall-clock readings must stay confined to
//! `wall_`-prefixed keys of the event log — the output rows carry none.

use std::path::{Path, PathBuf};
use std::process::Command;

use emac_core::digest::Fnv64;
use emac_core::obs::ObsReport;

fn emac() -> Command {
    Command::new(env!("CARGO_BIN_EXE_emac"))
}

fn fnv_hex(bytes: &[u8]) -> String {
    format!("{:016x}", Fnv64::new().bytes(bytes).finish())
}

/// A fresh scratch directory per test case.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emac-obs-det-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run `emac <cmd> <spec> --format <format> --out <out_dir> [extra...]`
/// and return the output-file bytes. Exit status is not asserted:
/// duty-cycle scenarios violate invariants by design and exit non-zero,
/// by contract.
fn run_to_bytes(cmd: &str, spec: &Path, format: &str, out_dir: &Path, extra: &[&str]) -> Vec<u8> {
    let out = emac()
        .args([cmd, spec.to_str().unwrap(), "--format", format, "--out"])
        .arg(out_dir)
        .args(extra)
        .output()
        .unwrap();
    let out_path = out_dir.join(format!("{cmd}.{format}"));
    assert!(
        out_path.is_file(),
        "{cmd} must produce {}: {}",
        out_path.display(),
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read(&out_path).unwrap()
}

/// Ingest one event log, asserting every line parses.
fn ingest(path: &Path) -> ObsReport {
    let text = std::fs::read_to_string(path).unwrap();
    let mut report = ObsReport::default();
    report.ingest(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    report
}

/// Kept verbatim in sync with `CAMPAIGN_CSV_GOLDEN` in
/// `tests/golden_determinism.rs`: the registry-wide campaign grid.
const CAMPAIGN_CSV_GOLDEN: &str = "3b17903468572632";

const GOLDEN_GRID_SPEC: &str = r#"{
  "grids": [
    {"algorithms": ["orchestra", "orchestra-nomb", "count-hop", "adjust-window",
                    "k-cycle", "k-cycle:1/2", "k-clique", "k-subsets",
                    "k-subsets-rrw", "duty-cycle"],
     "adversaries": ["uniform", "round-robin"],
     "n": [8], "k": [4], "rho": ["1/8"], "beta": ["1"],
     "rounds": 2048, "seeds": [7]}
  ]
}"#;

/// A cheap 4-point boundary map (no ensemble, no continuation).
const MAP_SPEC: &str = r#"{
  "template": {"algorithm": "k-cycle", "adversary": "uniform",
               "rounds": 2000, "probe_cap": 1000},
  "axis": "rho", "lo": "0", "hi": "1/2", "tol": 0.01,
  "map": {"n": [6, 9], "k": [2, 3]}
}"#;

/// Mixed 8-scenario campaign with a fault plan, for the JSONL shape
/// checks: full-detail rows may carry fault telemetry, never wall clocks.
const JSONL_SPEC: &str = r#"{
  "scenarios": [
    {"label": "jammed", "algorithm": "k-cycle", "adversary": "uniform",
     "n": 8, "k": 3, "rho": "1/8", "rounds": 1024, "seed": 4,
     "faults": {"jam": "1/10", "seed": 9}}
  ],
  "grids": [
    {"algorithms": ["k-cycle", "count-hop"], "adversaries": ["uniform"],
     "n": [6, 8], "k": [3], "rho": ["1/8"], "beta": ["1"],
     "rounds": 1024, "seeds": [5, 6]}
  ]
}"#;

#[test]
fn armed_campaign_bytes_match_disarmed_and_the_pinned_golden() {
    let dir = scratch("campaign");
    let spec = dir.join("grid.json");
    std::fs::write(&spec, GOLDEN_GRID_SPEC).unwrap();

    let disarmed = run_to_bytes("campaign", &spec, "csv", &dir.join("off"), &[]);
    let events = dir.join("events.jsonl");
    let armed = run_to_bytes(
        "campaign",
        &spec,
        "csv",
        &dir.join("on"),
        &["--progress", "--events", events.to_str().unwrap()],
    );
    assert_eq!(armed, disarmed, "arming observability must not change one output byte");
    assert_eq!(
        fnv_hex(&armed),
        CAMPAIGN_CSV_GOLDEN,
        "armed registry grid must still digest to the pinned campaign CSV golden"
    );

    // Probe conservation, campaign form: one Row event per output row,
    // and the checkpoint agrees.
    let report = ingest(&events);
    let data_rows = disarmed.iter().filter(|&&b| b == b'\n').count() - 1;
    assert_eq!(report.rows as usize, data_rows, "one Row event per CSV data row");
    let ckpt = std::fs::read_to_string(dir.join("on/campaign.ckpt")).unwrap();
    let done_lines = ckpt.lines().filter(|l| l.starts_with("done ")).count();
    assert_eq!(report.rows as usize, done_lines, "Row events must match checkpointed rows");
    assert_eq!(report.runs_finished, 1, "exactly one RunFinished event");
    assert!(report.fsyncs > 0, "checkpointed rows must have timed fsync barriers");
    assert!(report.rounds > 0, "RunFinished must carry the simulated round total");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn armed_frontier_bytes_match_disarmed_and_probes_are_conserved() {
    let dir = scratch("frontier");
    let spec = dir.join("map.json");
    std::fs::write(&spec, MAP_SPEC).unwrap();

    let disarmed = run_to_bytes("frontier", &spec, "csv", &dir.join("off"), &[]);
    let events = dir.join("events.jsonl");
    let armed = run_to_bytes(
        "frontier",
        &spec,
        "csv",
        &dir.join("on"),
        &["--progress", "--events", events.to_str().unwrap()],
    );
    assert_eq!(armed, disarmed, "arming observability must not change one output byte");

    // Probe conservation: the event log and the checkpoint saw the very
    // same probes, and every map point produced a Row event.
    let report = ingest(&events);
    let ckpt = std::fs::read_to_string(dir.join("on/frontier.ckpt")).unwrap();
    let ckpt_probes = ckpt.lines().filter(|l| l.starts_with("probe ")).count();
    assert_eq!(report.probes as usize, ckpt_probes, "Probe events must match the checkpoint");
    assert_eq!(report.rows, 4, "one Row event per map point");
    assert!(report.waves > 0, "bisection must report refinement waves");
    assert_eq!(report.runs_finished, 1, "exactly one RunFinished event");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wall_clock_stays_in_the_event_log_and_out_of_output_rows() {
    let dir = scratch("wall");
    let spec = dir.join("spec.json");
    std::fs::write(&spec, JSONL_SPEC).unwrap();

    let disarmed = run_to_bytes("campaign", &spec, "jsonl", &dir.join("off"), &[]);
    let events = dir.join("events.jsonl");
    let armed = run_to_bytes(
        "campaign",
        &spec,
        "jsonl",
        &dir.join("on"),
        &["--events", events.to_str().unwrap()],
    );
    assert_eq!(armed, disarmed, "arming the event log must not change one output byte");

    let rows = String::from_utf8(armed).unwrap();
    assert!(
        !rows.contains("wall_"),
        "output rows must never carry wall-clock fields — those belong to the event log"
    );
    assert!(
        rows.contains("jammed_rounds"),
        "full-detail rows of a faulted scenario must carry fault telemetry"
    );
    let log = std::fs::read_to_string(&events).unwrap();
    assert!(log.contains("\"wall_us\""), "the event log is where wall clocks live");
    ingest(&events);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_fleet_with_obs_merges_to_single_process_bytes() {
    let dir = scratch("fleet");
    let spec = dir.join("spec.json");
    std::fs::write(&spec, JSONL_SPEC).unwrap();
    let reference = run_to_bytes("campaign", &spec, "csv", &dir.join("single"), &[]);

    let fleet = dir.join("fleet");
    let plan = emac()
        .args(["shard", "plan", spec.to_str().unwrap(), "--dir"])
        .arg(&fleet)
        .args(["--shards", "2", "--format", "csv"])
        .output()
        .unwrap();
    assert!(plan.status.success(), "plan: {}", String::from_utf8_lossy(&plan.stderr));
    for shard in ["0", "1"] {
        let run = emac()
            .args(["shard", "run", spec.to_str().unwrap(), "--dir"])
            .arg(&fleet)
            .args(["--shard", shard, "--progress"])
            .output()
            .unwrap();
        assert!(run.status.success(), "shard {shard}: {}", String::from_utf8_lossy(&run.stderr));
    }
    let merged = fleet.join("merged.csv");
    let out = emac()
        .args(["shard", "merge", "--dir"])
        .arg(&fleet)
        .args(["--out"])
        .arg(&merged)
        .output()
        .unwrap();
    assert!(out.status.success(), "merge: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        std::fs::read(&merged).unwrap(),
        reference,
        "merged fleet bytes must be identical to single-process despite per-shard event logs"
    );

    // Each shard's always-on event log parses, and together they conserve
    // the fleet's rows.
    let mut fleet_rows = 0;
    for shard in 0..2usize {
        let report = ingest(&fleet.join(format!("shard-{shard}/events.jsonl")));
        assert_eq!(report.runs_finished, 1, "shard {shard} must log RunStarted/RunFinished");
        fleet_rows += report.rows;
    }
    let data_rows = reference.iter().filter(|&&b| b == b'\n').count() - 1;
    assert_eq!(fleet_rows as usize, data_rows, "fleet event logs must conserve total rows");

    // `emac obs report` aggregates the whole fleet's logs into one view
    // (shard 0 launched first, so it claimed — and stole — real work).
    let report = emac()
        .args(["obs", "report"])
        .arg(fleet.join("shard-0/events.jsonl"))
        .arg(fleet.join("shard-1/events.jsonl"))
        .output()
        .unwrap();
    assert!(report.status.success(), "{}", String::from_utf8_lossy(&report.stderr));
    let text = String::from_utf8(report.stdout).unwrap();
    assert!(text.contains("event(s)") && text.contains("shard 0:"), "report: {text}");

    // `emac shard status` is enriched from the logs...
    let status = emac().args(["shard", "status", "--dir"]).arg(&fleet).output().unwrap();
    assert!(status.status.success(), "{}", String::from_utf8_lossy(&status.stderr));
    let text = String::from_utf8(status.stdout).unwrap();
    assert!(text.contains("row(s)/"), "status must surface per-shard event activity: {text}");

    // ...and degrades explicitly, not fatally, when a log goes missing.
    std::fs::remove_file(fleet.join("shard-0/events.jsonl")).unwrap();
    let status = emac().args(["shard", "status", "--dir"]).arg(&fleet).output().unwrap();
    assert!(status.status.success(), "{}", String::from_utf8_lossy(&status.stderr));
    let text = String::from_utf8(status.stdout).unwrap();
    assert!(
        text.contains("no event log; claim-table view only"),
        "status must name the shard whose log is unreadable: {text}"
    );

    // Malformed event lines are an error, not noise to skip.

    let bad = fleet.join("bad.jsonl");
    std::fs::write(&bad, "{\"ev\":\"nope\"}\n").unwrap();
    let report = emac().args(["obs", "report"]).arg(&bad).output().unwrap();
    assert!(!report.status.success(), "malformed event lines must be an error, not noise");
    let _ = std::fs::remove_dir_all(&dir);
}
