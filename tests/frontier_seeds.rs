//! Frontier seed-ensemble semantics: the `"seeds"` template key.
//!
//! Three contracts are pinned here on top of the unit tests in
//! `emac-core`'s frontier module:
//!
//! 1. a single-element seed list is a pure seed override — the map is
//!    byte-identical to editing the template's `"seed"` directly;
//! 2. a degenerate ensemble of identical seeds equals the solo run with
//!    the template seed byte-for-byte (every lane is the same execution,
//!    so the strict-majority verdict collapses to the solo verdict);
//! 3. an honest multi-seed ensemble still produces a deterministic,
//!    thread-count-independent map.

use emac::registry::Registry;
use emac_core::frontier::{CsvMapSink, Frontier, FrontierSpec};

const BASE: &str = r#"{
  "template": {"algorithm": "k-cycle", "adversary": "spread-from-one",
               "target": 1, "beta": "1", "rounds": 8000, "probe_cap": 800SEED},
  "axis": "rho",
  "lo": "0.5 * group_share",
  "hi": "1.25 * k_cycle_threshold",
  "tol": 0.0625,
  "map": {"n": [9], "k": [3]}SEEDS
}"#;

fn spec(seed: Option<u64>, seeds: &str) -> FrontierSpec {
    let seed = seed.map_or(String::new(), |s| format!(", \"seed\": {s}"));
    let seeds = if seeds.is_empty() { String::new() } else { format!(",\n  \"seeds\": {seeds}") };
    FrontierSpec::parse(&BASE.replace("SEEDS", &seeds).replace("SEED", &seed)).unwrap()
}

fn run(spec: &FrontierSpec, threads: usize) -> String {
    let mut sink = CsvMapSink::new(Vec::new());
    Frontier::new().threads(threads).run_into(spec, &Registry, &mut sink, None).unwrap();
    String::from_utf8(sink.into_inner()).unwrap()
}

#[test]
fn single_seed_list_is_a_template_seed_override() {
    assert_eq!(run(&spec(None, "[5]"), 1), run(&spec(Some(5), ""), 1));
    // ... and a scalar parses like a one-element list.
    assert_eq!(run(&spec(None, "5"), 1), run(&spec(Some(5), ""), 1));
}

/// Strip the three band columns an ensemble map appends (header and
/// rows), leaving the legacy solo-map byte format.
fn strip_band(map: &str) -> String {
    map.lines()
        .map(|line| {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 11, "ensemble rows carry exactly three extra columns");
            fields[..8].join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[test]
fn identical_seed_ensemble_collapses_to_the_solo_map() {
    // Template seed defaults to 42; three lanes of seed 42 are three
    // copies of the solo execution, so the majority verdict — and hence
    // the whole search trajectory — must match the solo run. The ensemble
    // map's band columns append *after* the legacy columns, so stripping
    // them recovers the solo bytes exactly; the band itself must be
    // degenerate with agreement exactly 1.
    let ensemble = run(&spec(None, "[42, 42, 42]"), 1);
    assert_eq!(strip_band(&ensemble), run(&spec(None, ""), 1));
    for row in ensemble.lines().skip(1) {
        let fields: Vec<&str> = row.split(',').collect();
        let boundary = fields[5];
        assert_eq!(fields[8], boundary, "band_lo collapses to the boundary");
        assert_eq!(fields[9], boundary, "band_hi collapses to the boundary");
        assert_eq!(fields[10], "1.000000", "identical lanes agree exactly");
    }
}

#[test]
fn seed_ensemble_maps_are_deterministic_at_any_thread_count() {
    let s = spec(None, "[3, 19, 42]");
    let serial = run(&s, 1);
    assert_eq!(serial, run(&s, 4), "ensemble map must not depend on the thread count");
    assert_eq!(serial, run(&s, 1), "ensemble map must be reproducible");
}

#[test]
fn seeds_round_trip_through_json_and_bind_the_digest() {
    let with = spec(None, "[3, 19, 42]");
    assert_eq!(with.seeds, vec![3, 19, 42]);
    let reparsed = FrontierSpec::parse(&with.to_json().render()).unwrap();
    assert_eq!(reparsed.seeds, with.seeds);

    // No seeds => no "seeds" key: pre-ensemble spec files keep their
    // digests (and hence their checkpoint identities).
    let without = spec(None, "");
    assert!(!without.to_json().render().contains("seeds"));
    assert_ne!(with.digest("csv"), without.digest("csv"), "seed list must bind the digest");

    let err = FrontierSpec::parse(
        r#"{"template": {"algorithm": "a", "adversary": "b"}, "seeds": [1, "x"]}"#,
    )
    .unwrap_err();
    assert!(err.contains("unsigned integers"), "{err}");
}
