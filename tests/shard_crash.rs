//! Crash-fault shard test: a worker process killed with SIGKILL
//! mid-bisection — an escalation event in flight — leaves state that
//! resumes and merges byte-identically, and a merge attempted *before*
//! the dead shard is resumed is refused with a named error.
//!
//! The map is the committed ensemble template without its continuation
//! clause: two independent points (n = 9 and n = 13, k = 3), 5-seed base
//! ensemble escalating to 9 lanes on disagreement. The n = 9 point sits
//! inside the seed-noise window, so escalation events are guaranteed to
//! be in its checkpoint stream — the kill lands after the first one is
//! durably recorded.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Two independent band-map points with escalation (no continuation, so
/// each point is its own work unit and a 2-shard plan gives one to each
/// worker).
const SPEC: &str = r#"{
  "template": {"algorithm": "k-cycle", "adversary": "spread-from-one-rand",
               "target": 1, "beta": "1", "rounds": 16000, "probe_cap": 2000},
  "axis": "rho",
  "lo": "0.5 * group_share",
  "hi": "1.25 * k_cycle_threshold",
  "tol": 0.0005,
  "map": {"n": [9, 13], "k": [3]},
  "seeds": [1, 2, 3, 4, 5],
  "escalate": {"max_seeds": 9, "step": 2}
}"#;

fn emac() -> Command {
    Command::new(env!("CARGO_BIN_EXE_emac"))
}

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emac-shard-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Count fsync'd probe records in a frontier checkpoint (complete lines
/// only — a SIGKILL can leave a torn tail).
fn probe_lines(path: &Path) -> usize {
    match std::fs::read_to_string(path) {
        Ok(text) => text
            .lines()
            .take(text.matches('\n').count()) // complete lines only
            .filter(|l| l.starts_with("probe "))
            .count(),
        Err(_) => 0,
    }
}

/// Whether the checkpoint already holds a *recorded escalation event* —
/// a probe line with the extra `<diverging> <lanes>` fields.
fn has_escalation(path: &Path) -> bool {
    match std::fs::read_to_string(path) {
        Ok(text) => text
            .lines()
            .take(text.matches('\n').count())
            .any(|l| l.starts_with("probe ") && l.split_whitespace().count() >= 5),
        Err(_) => false,
    }
}

#[test]
fn killed_worker_resumes_and_merges_byte_identically() {
    let dir = scratch();
    let spec = dir.join("map.json");
    std::fs::write(&spec, SPEC).unwrap();

    // Reference: uninterrupted single-process run through the binary.
    let single = dir.join("single");
    let out = emac()
        .args(["frontier", spec.to_str().unwrap(), "--format", "csv", "--out"])
        .arg(&single)
        .output()
        .unwrap();
    assert!(out.status.success(), "reference run: {}", String::from_utf8_lossy(&out.stderr));
    let reference = std::fs::read(single.join("frontier.csv")).unwrap();
    let reference_probes = probe_lines(&single.join("frontier.ckpt"));
    assert!(reference_probes > 0, "reference checkpoint must record probes");

    // Plan 2 shards: unit 0 (n=9, the escalating point) on shard 0,
    // unit 1 (n=13) on shard 1.
    let fleet = dir.join("fleet");
    let plan = emac()
        .args(["shard", "plan", spec.to_str().unwrap(), "--dir"])
        .arg(&fleet)
        .args(["--shards", "2"])
        .output()
        .unwrap();
    assert!(plan.status.success(), "plan: {}", String::from_utf8_lossy(&plan.stderr));

    // Start shard 0 and SIGKILL it the moment an escalation event is
    // durably in its checkpoint — mid-bisection by construction, since
    // converging to tol 0.0005 takes many more probes than one.
    let ckpt0 = fleet.join("shard-0").join("frontier.ckpt");
    let mut victim = emac()
        .args(["shard", "run", spec.to_str().unwrap(), "--dir"])
        .arg(&fleet)
        .args(["--shard", "0"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    loop {
        if has_escalation(&ckpt0) {
            break;
        }
        assert!(
            victim.try_wait().unwrap().is_none(),
            "worker finished before an escalation event was recorded"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    victim.kill().unwrap(); // SIGKILL — no flush, no cleanup
    victim.wait().unwrap();
    let probes_at_kill = probe_lines(&ckpt0);
    assert!(probes_at_kill > 0, "kill window must capture recorded probes");

    // Shard 1 completes its own unit; it must NOT steal the dead
    // shard's leased unit.
    let run1 = emac()
        .args(["shard", "run", spec.to_str().unwrap(), "--dir"])
        .arg(&fleet)
        .args(["--shard", "1"])
        .output()
        .unwrap();
    assert!(run1.status.success(), "shard 1: {}", String::from_utf8_lossy(&run1.stderr));

    // Merging with the dead shard unresumed is refused, by name.
    let premature = emac().args(["shard", "merge", "--dir"]).arg(&fleet).output().unwrap();
    assert!(!premature.status.success(), "merge must refuse an unfinished shard");
    let stderr = String::from_utf8_lossy(&premature.stderr);
    assert!(
        stderr.contains("shard 0 is unfinished") && stderr.contains("--resume"),
        "refusal must name the dead shard and the fix: {stderr}"
    );

    // Resume the dead shard: replays the recorded probes (escalation
    // events included) and finishes the bisection.
    let resume = emac()
        .args(["shard", "run", spec.to_str().unwrap(), "--dir"])
        .arg(&fleet)
        .args(["--shard", "0", "--resume"])
        .output()
        .unwrap();
    assert!(resume.status.success(), "resume: {}", String::from_utf8_lossy(&resume.stderr));

    // Merge: byte-identical to the uninterrupted run, and the fleet ran
    // exactly the probes the single process ran — the kill neither lost
    // nor repeated work.
    let merged_path = fleet.join("merged.csv");
    let merge = emac().args(["shard", "merge", "--dir"]).arg(&fleet).output().unwrap();
    assert!(merge.status.success(), "merge: {}", String::from_utf8_lossy(&merge.stderr));
    let merged = std::fs::read(&merged_path).unwrap();
    assert_eq!(merged, reference, "merged bytes must match the uninterrupted run");

    let fleet_probes =
        probe_lines(&ckpt0) + probe_lines(&fleet.join("shard-1").join("frontier.ckpt"));
    assert_eq!(
        fleet_probes, reference_probes,
        "probe conservation: fleet probes must equal single-process probes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
