//! Golden determinism tests: byte-identical executions, pinned by digest.
//!
//! Every scenario in the matrix below folds its entire [`RunReport`] —
//! metrics, queue series, per-station counters, delay histogram,
//! violations, stability verdict — into a 64-bit FNV-1a digest
//! (`emac_core::digest`). The expected values were produced once and are
//! committed; any change to the engine, the queues, the schedules, or the
//! adversaries that alters even one observable of one execution fails here.
//!
//! This is the safety net under hot-path refactoring: an allocation-free
//! rewrite of the round loop must reproduce these digests exactly.
//!
//! To re-pin after an *intentional* semantic change, run
//! `cargo test --test golden_determinism -- --nocapture` and copy the
//! printed table (and justify the change in the commit).

use emac::registry::Registry;
use emac_core::campaign::{Campaign, CsvStreamSink, MetricsDetail, ScenarioSpec};
use emac_core::digest::{report_digest_hex, Fnv64};
use emac_sim::Rate;

const N: usize = 8;
const K: usize = 4;
const ROUNDS: u64 = 4_096;

/// The pinned seed matrix: every registry algorithm × adversaries that
/// apply to it × β ∈ {1, 3/2}.
fn matrix() -> Vec<ScenarioSpec> {
    let algorithms: &[&str] = &[
        "orchestra",
        "orchestra-nomb",
        "count-hop",
        "adjust-window",
        "k-cycle",
        "k-cycle:1/2",
        "k-clique",
        "k-subsets",
        "k-subsets-rrw",
        "duty-cycle",
    ];
    // The schedule-aware lower-bound adversaries only apply to the
    // energy-oblivious algorithms.
    let oblivious: &[&str] =
        &["k-cycle", "k-cycle:1/2", "k-clique", "k-subsets", "k-subsets-rrw", "duty-cycle"];
    let betas = [Rate::integer(1), Rate::new(3, 2)];
    let mut specs = Vec::new();
    for &alg in algorithms {
        let mut adversaries = vec!["uniform", "round-robin"];
        if oblivious.contains(&alg) {
            adversaries.push("least-on");
        }
        for adv in adversaries {
            for beta in betas {
                specs.push(
                    ScenarioSpec::new(alg, adv)
                        .n(N)
                        .k(K)
                        .rho(Rate::new(1, 8))
                        .beta(beta)
                        .rounds(ROUNDS)
                        .seed(7)
                        .horizon(2_000)
                        .label(format!("{alg}|{adv}|beta={}/{}", beta.num(), beta.den())),
                );
            }
        }
    }
    specs
}

/// Pinned digests, one per matrix entry, in matrix order.
const GOLDEN: &[(&str, &str)] = &[
    ("orchestra|uniform|beta=1/1", "0266885699dc3983"),
    ("orchestra|uniform|beta=3/2", "2677f29c346febe7"),
    ("orchestra|round-robin|beta=1/1", "42bb0f8bfbd11c92"),
    ("orchestra|round-robin|beta=3/2", "2c1e865cda045cc8"),
    ("orchestra-nomb|uniform|beta=1/1", "e78435567e0e8e02"),
    ("orchestra-nomb|uniform|beta=3/2", "25b6782faf8a7e92"),
    ("orchestra-nomb|round-robin|beta=1/1", "8909f77b5ff159b7"),
    ("orchestra-nomb|round-robin|beta=3/2", "7ec4abaeba1b92a1"),
    ("count-hop|uniform|beta=1/1", "ee5302b9ce623892"),
    ("count-hop|uniform|beta=3/2", "bb9b175444eaf2e5"),
    ("count-hop|round-robin|beta=1/1", "2981a5f41c82918f"),
    ("count-hop|round-robin|beta=3/2", "aa6b3a0d7478cf6e"),
    ("adjust-window|uniform|beta=1/1", "4d8696811e41aaf2"),
    ("adjust-window|uniform|beta=3/2", "365cfc3e7df25caa"),
    ("adjust-window|round-robin|beta=1/1", "ccc21d72215b551d"),
    ("adjust-window|round-robin|beta=3/2", "0b9f3d7072e9d345"),
    ("k-cycle|uniform|beta=1/1", "e927971c99ab3496"),
    ("k-cycle|uniform|beta=3/2", "9d940580e916952e"),
    ("k-cycle|round-robin|beta=1/1", "4f91c065cad1fb96"),
    ("k-cycle|round-robin|beta=3/2", "a661cff3dfafaab9"),
    ("k-cycle|least-on|beta=1/1", "56f1eceef0593547"),
    ("k-cycle|least-on|beta=3/2", "49b400e7c7ea225d"),
    ("k-cycle:1/2|uniform|beta=1/1", "b9d22468b4b3029d"),
    ("k-cycle:1/2|uniform|beta=3/2", "75ee9eab53afdfa0"),
    ("k-cycle:1/2|round-robin|beta=1/1", "e3354316afc54fa8"),
    ("k-cycle:1/2|round-robin|beta=3/2", "ccc15f0faa5aaa1d"),
    ("k-cycle:1/2|least-on|beta=1/1", "8e512f295a33b944"),
    ("k-cycle:1/2|least-on|beta=3/2", "b9d859619651c09b"),
    ("k-clique|uniform|beta=1/1", "5eb56210e1ae674a"),
    ("k-clique|uniform|beta=3/2", "fd6e5c885cfd89b4"),
    ("k-clique|round-robin|beta=1/1", "8f31eec0c5d1ffe6"),
    ("k-clique|round-robin|beta=3/2", "aee93f589edb2124"),
    ("k-clique|least-on|beta=1/1", "7aaf273485f2763c"),
    ("k-clique|least-on|beta=3/2", "53c53b8e3b9e1a90"),
    ("k-subsets|uniform|beta=1/1", "dc23c1b3c1a197e9"),
    ("k-subsets|uniform|beta=3/2", "168a57ba53e34f24"),
    ("k-subsets|round-robin|beta=1/1", "c8d5ca4067e61f19"),
    ("k-subsets|round-robin|beta=3/2", "a88bdc7e1ddfcbd9"),
    ("k-subsets|least-on|beta=1/1", "944f8c124c35c2ab"),
    ("k-subsets|least-on|beta=3/2", "7a6bc1cac355225e"),
    ("k-subsets-rrw|uniform|beta=1/1", "62548d933cf170c8"),
    ("k-subsets-rrw|uniform|beta=3/2", "5e4fd3c1fb519ebd"),
    ("k-subsets-rrw|round-robin|beta=1/1", "f38d18c3d9d526bc"),
    ("k-subsets-rrw|round-robin|beta=3/2", "0b33aaa919b10ffe"),
    ("k-subsets-rrw|least-on|beta=1/1", "8ebe45c9535f4055"),
    ("k-subsets-rrw|least-on|beta=3/2", "971e6eee95185dbe"),
    ("duty-cycle|uniform|beta=1/1", "53657255bd072610"),
    ("duty-cycle|uniform|beta=3/2", "a2fb235efafa8110"),
    ("duty-cycle|round-robin|beta=1/1", "89f1ef5d86d7a30d"),
    ("duty-cycle|round-robin|beta=3/2", "95a0f622ea6c336d"),
    ("duty-cycle|least-on|beta=1/1", "25a09759c81535d8"),
    ("duty-cycle|least-on|beta=3/2", "d5d47104483c7022"),
];

#[test]
fn run_report_digests_match_golden() {
    let specs = matrix();
    let result = Campaign::new().threads(4).run(&specs, &Registry);
    assert_eq!(result.first_error(), None, "every golden scenario must run");
    let actual: Vec<(String, String)> = result
        .runs
        .iter()
        .map(|run| {
            let report = run.outcome.as_ref().expect("checked above");
            (run.spec.display_label(), report_digest_hex(report))
        })
        .collect();
    let expected: Vec<(String, String)> =
        GOLDEN.iter().map(|&(l, d)| (l.to_string(), d.to_string())).collect();
    if actual != expected {
        println!("const GOLDEN: &[(&str, &str)] = &[");
        for (label, digest) in &actual {
            println!("    ({label:?}, {digest:?}),");
        }
        println!("];");
        let divergent: Vec<&str> = actual
            .iter()
            .zip(expected.iter())
            .filter(|(a, e)| a != e)
            .map(|(a, _)| a.0.as_str())
            .collect();
        panic!(
            "{} of {} golden digests diverged (first: {:?}); \
             full re-pin table printed above",
            divergent
                .len()
                .max((actual.len() as i64 - expected.len() as i64).unsigned_abs() as usize),
            actual.len(),
            divergent.first()
        );
    }
}

/// Pinned digest of the **campaign-level** CSV export over a small
/// registry-wide grid: an FNV-1a fold of the exact bytes `to_csv` (and,
/// byte-identically, `CsvStreamSink`) produces. The per-report digests
/// above catch engine changes; this one catches executor/export refactors
/// — column reordering, float formatting, row ordering, sink drift.
const CAMPAIGN_CSV_GOLDEN: &str = "3b17903468572632";

/// Registry-wide campaign grid: every algorithm × {uniform, round-robin}.
fn campaign_matrix() -> Vec<ScenarioSpec> {
    let algorithms: &[&str] = &[
        "orchestra",
        "orchestra-nomb",
        "count-hop",
        "adjust-window",
        "k-cycle",
        "k-cycle:1/2",
        "k-clique",
        "k-subsets",
        "k-subsets-rrw",
        "duty-cycle",
    ];
    let mut specs = Vec::new();
    for &alg in algorithms {
        for adv in ["uniform", "round-robin"] {
            specs.push(
                ScenarioSpec::new(alg, adv)
                    .n(N)
                    .k(K)
                    .rho(Rate::new(1, 8))
                    .beta(Rate::integer(1))
                    .rounds(2_048)
                    .seed(7),
            );
        }
    }
    specs
}

#[test]
fn campaign_csv_digest_matches_golden() {
    let specs = campaign_matrix();
    let result = Campaign::new().threads(4).run(&specs, &Registry);
    assert_eq!(result.first_error(), None, "every campaign-grid scenario must run");
    let csv = result.to_csv();
    let actual = format!("{:016x}", Fnv64::new().bytes(csv.as_bytes()).finish());
    if actual != CAMPAIGN_CSV_GOLDEN {
        println!("--- campaign CSV (re-pin the digest below after justifying the change) ---");
        print!("{csv}");
        panic!(
            "campaign CSV digest diverged: expected {CAMPAIGN_CSV_GOLDEN}, got {actual}; \
             full CSV printed above"
        );
    }
    // The streaming sink writes the same bytes while the campaign runs.
    let mut sink = CsvStreamSink::new(Vec::new());
    Campaign::new().threads(4).run_into(&specs, &Registry, &mut sink).unwrap();
    assert_eq!(String::from_utf8(sink.into_inner()).unwrap(), csv);
}

/// `Slim` detail invariance over the registry grid: every scalar metric
/// equals its `Full` counterpart, so the CSV export (scalar columns only)
/// digests identically to [`CAMPAIGN_CSV_GOLDEN`]'s bytes.
#[test]
fn slim_detail_scalars_match_full_on_registry_grid() {
    let specs = campaign_matrix();
    let full = Campaign::new().threads(4).run(&specs, &Registry);
    let slim = Campaign::new().threads(4).detail(MetricsDetail::Slim).run(&specs, &Registry);
    assert_eq!(full.to_csv(), slim.to_csv(), "Slim changed a scalar CSV column");
    for (f, s) in full.reports().zip(slim.reports()) {
        assert_eq!(report_scalars(f), report_scalars(s));
        assert!(s.metrics.queue_series.is_empty());
        assert!(s.metrics.delay.log2_buckets().iter().all(|&c| c == 0));
    }
}

#[allow(clippy::type_complexity)]
fn report_scalars(r: &emac_core::RunReport) -> (u64, u64, u64, u128, u64, u64, u64, f64) {
    (
        r.metrics.injected,
        r.metrics.delivered,
        r.metrics.delay.max(),
        r.metrics.delay.sum(),
        r.max_queue(),
        r.metrics.energy_total,
        r.metrics.delay.count(),
        r.stability.slope,
    )
}

/// Pinned digest of a frontier-map CSV export: an FNV-1a fold of the exact
/// bytes a [`CsvMapSink`] writes for a small k-Cycle concentrated-flood
/// map. The campaign digest above catches executor/export refactors; this
/// one catches **search-order** refactors in the frontier engine — wave
/// batching, bisection state, row emission, float formatting — which must
/// all stay byte-for-byte, at any thread count.
const FRONTIER_CSV_GOLDEN: &str = "8d94529b6fcee3c3";

const FRONTIER_GOLDEN_MAP: &str = r#"{
  "template": {"algorithm": "k-cycle", "adversary": "spread-from-one",
               "target": 1, "beta": "1", "rounds": 30000, "probe_cap": 2000},
  "axis": "rho",
  "lo": "0.5 * group_share",
  "hi": "1.25 * k_cycle_threshold",
  "tol": 0.03125,
  "map": {"n": [9, 13], "k": [3]}
}"#;

#[test]
fn frontier_csv_digest_matches_golden_at_any_thread_count() {
    use emac_core::frontier::{CsvMapSink, Frontier, FrontierSpec};

    let spec = FrontierSpec::parse(FRONTIER_GOLDEN_MAP).unwrap();
    let run = |threads: usize| -> String {
        let mut sink = CsvMapSink::new(Vec::new());
        Frontier::new().threads(threads).run_into(&spec, &Registry, &mut sink, None).unwrap();
        String::from_utf8(sink.into_inner()).unwrap()
    };
    let serial = run(1);
    assert_eq!(serial, run(4), "frontier map must not depend on the thread count");
    let actual = format!("{:016x}", Fnv64::new().bytes(serial.as_bytes()).finish());
    if actual != FRONTIER_CSV_GOLDEN {
        println!("--- frontier CSV (re-pin the digest below after justifying the change) ---");
        print!("{serial}");
        panic!(
            "frontier CSV digest diverged: expected {FRONTIER_CSV_GOLDEN}, got {actual}; \
             full CSV printed above"
        );
    }
}

/// The band-era template keys (`seeds`, `escalate`, `continuation`) must
/// be invisible in a legacy spec's canonical JSON: the spec digest is the
/// checkpoint identity, so any stray key would orphan every pre-band
/// `frontier.ckpt`. Pinned against the shipped legacy spec file with the
/// digest it had before bands existed.
#[test]
fn legacy_frontier_spec_digest_is_unchanged_by_the_band_era() {
    use emac_core::frontier::FrontierSpec;

    let text = std::fs::read_to_string("specs/frontier_theorem5.json").unwrap();
    let spec = FrontierSpec::parse(&text).unwrap();
    let rendered = spec.to_json().render();
    for key in ["seeds", "escalate", "continuation", "band"] {
        assert!(!rendered.contains(key), "legacy spec must not render {key:?}: {rendered}");
    }
    // The digest the CLI binds CSV checkpoints to — old frontier.ckpt
    // files must keep resuming.
    assert_eq!(format!("{:016x}", spec.digest("frontier.csv")), "fbfbbbec6275f974");
}

/// Pinned digest of the seed-ensemble band map over
/// `specs/frontier_theorem5_band.json`: k-Cycle under the seeded
/// concentrated flood, a 5-seed base ensemble escalating to 9 lanes on
/// disagreement, and `n`-continuation warm-starting n=13 from n=9. Pins
/// the whole band pipeline — lockstep batches, escalation, the
/// verdict-flip band columns, warm-start brackets — byte-for-byte at any
/// thread count. The reproduction claim rides on these bytes: at n=9,
/// k=3 the band `[0.199817, 0.200024]` contains `1/ℓ = 1/5` and excludes
/// the paper's claimed `(k−1)/(n−1) = 1/4` (Theorem 5 discrepancy, now a
/// statistical claim rather than one stream's opinion).
const FRONTIER_BAND_CSV_GOLDEN: &str = "a3e0d1df6fb35675";

#[test]
fn frontier_band_csv_digest_matches_golden_at_any_thread_count() {
    use emac_core::frontier::{CsvMapSink, Frontier, FrontierSpec};

    let text = std::fs::read_to_string("specs/frontier_theorem5_band.json").unwrap();
    let spec = FrontierSpec::parse(&text).unwrap();
    let run = |threads: usize| -> String {
        let mut sink = CsvMapSink::new(Vec::new());
        Frontier::new().threads(threads).run_into(&spec, &Registry, &mut sink, None).unwrap();
        String::from_utf8(sink.into_inner()).unwrap()
    };
    let serial = run(1);
    assert_eq!(serial, run(4), "band map must not depend on the thread count");

    // The acceptance claim, asserted on the bytes themselves so a re-pin
    // cannot silently surrender it: band contains 1/ell, excludes the
    // paper's threshold.
    let n9 = serial.lines().nth(1).expect("n=9 row");
    let fields: Vec<&str> = n9.split(',').collect();
    let (band_lo, band_hi): (f64, f64) = (fields[8].parse().unwrap(), fields[9].parse().unwrap());
    assert!(band_lo <= 0.2 && 0.2 <= band_hi, "band [{band_lo}, {band_hi}] must contain 1/ell");
    assert!(band_hi < 0.25, "band [{band_lo}, {band_hi}] must exclude (k-1)/(n-1) = 0.25");
    let agreement: f64 = fields[10].parse().unwrap();
    assert!(agreement < 1.0, "a band straddling the boundary comes from lane disagreement");

    let actual = format!("{:016x}", Fnv64::new().bytes(serial.as_bytes()).finish());
    if actual != FRONTIER_BAND_CSV_GOLDEN {
        println!("--- band CSV (re-pin the digest below after justifying the change) ---");
        print!("{serial}");
        panic!(
            "band-map CSV digest diverged: expected {FRONTIER_BAND_CSV_GOLDEN}, got {actual}; \
             full CSV printed above"
        );
    }
}

/// Pinned digest of `specs/frontier_kcycle_jammed.json`'s CSV: the first
/// stability surface the paper could not state. With ρ fixed at `0.9 *
/// group_share` (comfortably stable on a clean channel), k-Cycle's jamming
/// tolerance lands at jam ≈ 0.117 for both map points — the channel's
/// spare capacity `1 − 0.9 = 0.1` plus the slack the finite probe horizon
/// affords, and independent of n because both ρ and the schedule share
/// scale with `1/ℓ`.
const FRONTIER_JAMMED_CSV_GOLDEN: &str = "31a3d6d0a5d33107";

#[test]
fn jammed_frontier_csv_digest_matches_golden_at_any_thread_count() {
    use emac_core::frontier::{CsvMapSink, Frontier, FrontierSpec};

    let text = std::fs::read_to_string("specs/frontier_kcycle_jammed.json").unwrap();
    let spec = FrontierSpec::parse(&text).unwrap();
    let run = |threads: usize| -> String {
        let mut sink = CsvMapSink::new(Vec::new());
        Frontier::new().threads(threads).run_into(&spec, &Registry, &mut sink, None).unwrap();
        String::from_utf8(sink.into_inner()).unwrap()
    };
    let serial = run(1);
    assert_eq!(serial, run(4), "jammed map must not depend on the thread count");

    // The robustness claim on the bytes themselves: the boundary sits
    // above the clean-channel spare capacity (1 - 0.9 = 0.1) but well
    // below the half-jammed channel that would drown ρ outright.
    for row in serial.lines().skip(1) {
        let fields: Vec<&str> = row.split(',').collect();
        let boundary: f64 = fields[5].parse().unwrap();
        assert!(
            (0.1..0.25).contains(&boundary),
            "jam boundary {boundary} outside the spare-capacity window"
        );
        assert_eq!(fields[7], "converged", "{row}");
    }

    let actual = format!("{:016x}", Fnv64::new().bytes(serial.as_bytes()).finish());
    if actual != FRONTIER_JAMMED_CSV_GOLDEN {
        println!("--- jammed CSV (re-pin the digest below after justifying the change) ---");
        print!("{serial}");
        panic!(
            "jammed-map CSV digest diverged: expected {FRONTIER_JAMMED_CSV_GOLDEN}, got {actual}; \
             full CSV printed above"
        );
    }
}

#[test]
fn digests_are_stable_across_repeated_runs_and_thread_counts() {
    // A slice of the matrix, run serially and in parallel: identical digests.
    let specs: Vec<ScenarioSpec> = matrix().into_iter().take(6).collect();
    let serial = Campaign::new().threads(1).run(&specs, &Registry);
    let parallel = Campaign::new().threads(4).run(&specs, &Registry);
    let d = |r: &emac_core::campaign::CampaignResult| -> Vec<String> {
        r.reports().map(report_digest_hex).collect()
    };
    assert_eq!(d(&serial), d(&parallel));
    assert_eq!(d(&serial), d(&Campaign::new().threads(1).run(&specs, &Registry)));
}
