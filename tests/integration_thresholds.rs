//! The ordering of the paper's stability thresholds, observed empirically:
//! for fixed `(n, k)` the same oblivious machinery is stable inside its
//! claimed region and unstable outside the matching impossibility bound,
//! and the regions nest the way Table 1 says they do.

use emac::adversary::{LeastOnPair, LeastOnStation};
use emac::core::prelude::*;
use emac::sim::Rate;

const N: usize = 9;
const K: usize = 3;

fn k_cycle_slope(rho: Rate) -> f64 {
    let alg = KCycle::new(K);
    let p = alg.params(N);
    let horizon = p.delta() * p.groups() as u64;
    Runner::new(N)
        .rate(rho)
        .beta(2)
        .rounds(150_000)
        .run_against(&alg, |s| Box::new(LeastOnStation::new(s.expect("oblivious"), N, horizon)))
        .stability
        .slope
}

#[test]
fn k_cycle_frontier_sits_between_the_two_thresholds() {
    // stable strictly below (k-1)/(n-1) = 1/4 ...
    let below = k_cycle_slope(bounds::k_cycle_rate_threshold(N as u64, K as u64).scaled(4, 5));
    assert!(below.abs() < 0.005, "below threshold: slope {below}");
    // ... and unstable strictly above k/n = 1/3 (Theorem 6)
    let above = k_cycle_slope(bounds::oblivious_rate_threshold(N as u64, K as u64).scaled(6, 5));
    assert!(above > 0.01, "above threshold: slope {above}");
}

#[test]
fn k_subsets_attains_exactly_its_threshold() {
    let n = 6usize;
    let k = 3usize;
    let alg = KSubsets::new(k);
    let thr = bounds::k_subsets_rate_threshold(n as u64, k as u64);
    // stable AT the threshold (Theorem 8) ...
    let at = Runner::new(n)
        .rate(thr)
        .beta(2)
        .rounds(200_000)
        .run_against(&alg, |s| Box::new(LeastOnPair::new(s.expect("oblivious"), n, 5_000)));
    assert!(at.clean(), "{}", at.violations);
    assert!(at.stability.slope.abs() < 0.01, "at threshold: {}", at.stability);
    // ... and unstable 50% above it (Theorem 9)
    let above = Runner::new(n)
        .rate(thr.scaled(3, 2))
        .beta(2)
        .rounds(200_000)
        .run_against(&alg, |s| Box::new(LeastOnPair::new(s.expect("oblivious"), n, 5_000)));
    assert!(above.stability.slope > 0.01, "above threshold: {}", above.stability);
}

#[test]
fn thresholds_nest_as_in_table1() {
    // k(k−1)/(n(n−1))  <  k²/(n(2n−k))·(≤)  <  (k−1)/(n−1)  <  k/n
    let n = 12u64;
    let k = 4u64;
    let subsets = bounds::k_subsets_rate_threshold(n, k);
    let clique = bounds::k_clique_rate_threshold(n, k);
    let cycle = bounds::k_cycle_rate_threshold(n, k);
    let oblivious = bounds::oblivious_rate_threshold(n, k);
    assert!(clique.lt(&cycle) || clique == cycle);
    assert!(subsets.lt(&cycle));
    assert!(cycle.lt(&oblivious));
    // k-Clique's stability threshold never exceeds the Theorem-9 cap
    assert!(clique.lt(&subsets) || clique == subsets);
}

#[test]
fn cap2_rate_one_is_impossible_but_rate_below_one_is_fine() {
    use emac::adversary::SleeperTargeting;
    // Theorem 2 via the sleeper-targeting adversary on a cap-2 algorithm.
    let diverging = Runner::new(6)
        .rate(Rate::one())
        .beta(2)
        .rounds(150_000)
        .run(&CountHop::new(), Box::new(SleeperTargeting::new()));
    assert!(diverging.stability.slope > 0.005, "{}", diverging.stability);
    // same algorithm, same adversary, rho = 0.9: stable.
    let stable = Runner::new(6)
        .rate(Rate::new(9, 10))
        .beta(2)
        .rounds(150_000)
        .run(&CountHop::new(), Box::new(SleeperTargeting::new()));
    assert!(stable.stability.slope.abs() < 0.005, "{}", stable.stability);
}
