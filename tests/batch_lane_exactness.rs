//! Batch lane exactness over the full golden registry matrix.
//!
//! For every scenario in the golden-determinism matrix (every registry
//! algorithm × its applicable adversaries × β ∈ {1, 3/2}), a lockstep
//! seed batch is run through the same executor the frontier's seed
//! ensembles use ([`emac_core::campaign::execute_batch`]) and every lane's
//! full [`RunReport`] digest is compared against a solo run of the same
//! scenario with that lane's seed. This pins the tentpole claim: batching
//! is a pure execution strategy — lane `i` is bit-for-bit the solo
//! execution with seed `i`, for periodic-schedule algorithms (shared wake
//! state), adaptive ones, and the aperiodic duty-cycle baseline (per-lane
//! fallback) alike.
//!
//! [`RunReport`]: emac_core::runner::RunReport

use emac::registry::Registry;
use emac_core::campaign::{execute_batch, Campaign, ScenarioSpec};
use emac_core::digest::report_digest_hex;
use emac_sim::{FaultSpec, Rate};

const N: usize = 8;
const K: usize = 4;
const ROUNDS: u64 = 4_096;

/// Seeds exercised per scenario: the golden matrix seed plus two others.
const SEEDS: [u64; 3] = [7, 8, 19];

/// The golden-determinism matrix (kept in lockstep with
/// `tests/golden_determinism.rs`).
fn matrix() -> Vec<ScenarioSpec> {
    let algorithms: &[&str] = &[
        "orchestra",
        "orchestra-nomb",
        "count-hop",
        "adjust-window",
        "k-cycle",
        "k-cycle:1/2",
        "k-clique",
        "k-subsets",
        "k-subsets-rrw",
        "duty-cycle",
    ];
    let oblivious: &[&str] =
        &["k-cycle", "k-cycle:1/2", "k-clique", "k-subsets", "k-subsets-rrw", "duty-cycle"];
    let betas = [Rate::integer(1), Rate::new(3, 2)];
    let mut specs = Vec::new();
    for &alg in algorithms {
        let mut adversaries = vec!["uniform", "round-robin"];
        if oblivious.contains(&alg) {
            adversaries.push("least-on");
        }
        for adv in adversaries {
            for beta in betas {
                specs.push(
                    ScenarioSpec::new(alg, adv)
                        .n(N)
                        .k(K)
                        .rho(Rate::new(1, 8))
                        .beta(beta)
                        .rounds(ROUNDS)
                        .seed(7)
                        .horizon(2_000)
                        .label(format!("{alg}|{adv}|beta={}/{}", beta.num(), beta.den())),
                );
            }
        }
    }
    specs
}

fn assert_lane_exact(spec: &ScenarioSpec) {
    let label = spec.display_label();
    let lanes = execute_batch(spec, &SEEDS, &Registry)
        .unwrap_or_else(|e| panic!("{label}: batch failed: {e}"));
    assert_eq!(lanes.len(), SEEDS.len());
    for (&seed, lane) in SEEDS.iter().zip(&lanes) {
        let mut solo_spec = spec.clone();
        solo_spec.seed = seed;
        let solo = Campaign::new().threads(1).run(std::slice::from_ref(&solo_spec), &Registry);
        let solo = solo.runs[0]
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{label} seed {seed}: solo failed: {e}"));
        assert_eq!(
            report_digest_hex(lane),
            report_digest_hex(solo),
            "{label}: lane digest for seed {seed} diverged from the solo run"
        );
    }
}

#[test]
fn every_matrix_scenario_is_lane_exact() {
    let specs = matrix();
    assert_eq!(specs.len(), 52, "matrix drifted from the golden registry");
    for spec in specs {
        assert_lane_exact(&spec);
    }
}

/// Lane exactness under every fault family. Jamming and deaf rounds keep
/// the lockstep shared-schedule path (the fault stream is lane-independent
/// and touches no wake state); crash and skew change the wake set, so the
/// batch falls back to per-lane stepping — both routes must stay
/// bit-for-bit equal to solo runs. Scenarios cover the periodic-schedule
/// path (k-cycle, shared wake cache) and the aperiodic per-lane fallback
/// (duty-cycle); the control-message algorithms (count-hop, orchestra,
/// adjust-window) assume a reliable channel by construction and abort when
/// jamming eats a message they must hear, so only the wake-only skew
/// family covers the adaptive route (below).
#[test]
fn faulty_scenarios_are_lane_exact() {
    let families: &[(&str, FaultSpec)] = &[
        ("jam", FaultSpec { jam: Rate::new(1, 10), seed: 5, ..Default::default() }),
        (
            "crash-retain",
            FaultSpec {
                crash: Rate::new(1, 200),
                crash_len: 48,
                retain_queue: true,
                seed: 5,
                ..Default::default()
            },
        ),
        (
            "crash-loss",
            FaultSpec {
                crash: Rate::new(1, 200),
                crash_len: 48,
                retain_queue: false,
                seed: 5,
                ..Default::default()
            },
        ),
        ("deaf", FaultSpec { deaf: Rate::new(1, 6), seed: 5, ..Default::default() }),
        ("skew", FaultSpec { skew: 3, seed: 5, ..Default::default() }),
        (
            "all-at-once",
            FaultSpec {
                jam: Rate::new(1, 16),
                crash: Rate::new(1, 300),
                crash_len: 32,
                retain_queue: false,
                deaf: Rate::new(1, 12),
                skew: 2,
                seed: 5,
            },
        ),
    ];
    for (tag, faults) in families {
        for alg in ["k-cycle", "duty-cycle"] {
            let spec = ScenarioSpec::new(alg, "uniform")
                .n(N)
                .k(K)
                .rho(Rate::new(1, 8))
                .rounds(ROUNDS)
                .seed(7)
                .faults(faults.clone())
                .label(format!("{alg}|uniform|faults={tag}"));
            assert_lane_exact(&spec);
        }
    }

    // Adaptive algorithms keep their own timers, so clock skew is the one
    // family that is defined for them (it only offsets `OnSchedule`
    // lookups); an active wake-affecting plan still forces the batch onto
    // the per-lane fallback, which must stay lane-exact for the adaptive
    // stepping path too.
    let spec = ScenarioSpec::new("count-hop", "uniform")
        .n(N)
        .k(K)
        .rho(Rate::new(1, 8))
        .rounds(ROUNDS)
        .seed(7)
        .faults(FaultSpec { skew: 3, seed: 5, ..Default::default() })
        .label("count-hop|uniform|faults=skew");
    assert_lane_exact(&spec);
}
