//! Shard-determinism suite: fleet-sharded executions are byte-identical
//! to single-process runs, whatever the shard count, launch order, or
//! steal schedule.
//!
//! Every case here drives the real `emac` binary (`emac shard plan`,
//! parallel `emac shard run` worker *processes*, `emac shard merge`) and
//! diffs the merged bytes against an uninterrupted single-process run of
//! the same spec:
//!
//! 1. a 64-scenario mixed campaign (explicit scenarios + a grid), split
//!    into {1, 2, 3, 7} shards launched in shuffled order;
//! 2. a 4-point frontier map under the same shard counts;
//! 3. JSONL output through a 2-shard split;
//! 4. the pinned goldens: the registry-wide campaign grid merges to
//!    `3b17903468572632` and `specs/frontier_theorem5_band.json` (seed
//!    ensemble, escalation, `n`-continuation) merges to
//!    `a3e0d1df6fb35675` — the same digests `tests/golden_determinism.rs`
//!    pins on the single-process paths.

use std::path::{Path, PathBuf};
use std::process::Command;

use emac_core::digest::Fnv64;

/// xorshift64 — the house stand-in for a rand dependency; shuffles the
/// shard launch order deterministically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, (self.next() % (i as u64 + 1)) as usize);
        }
    }
}

fn emac() -> Command {
    Command::new(env!("CARGO_BIN_EXE_emac"))
}

fn fnv_hex(bytes: &[u8]) -> String {
    format!("{:016x}", Fnv64::new().bytes(bytes).finish())
}

/// A fresh scratch directory per test case.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emac-shard-det-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// 4 explicit scenarios + a 60-point grid = 64 mixed scenarios.
const MIXED_SPEC: &str = r#"{
  "scenarios": [
    {"label": "drained", "algorithm": "count-hop", "adversary": "uniform",
     "n": 6, "rho": "1/4", "beta": "2", "rounds": 1024, "drain": 512, "seed": 3},
    {"label": "jammed", "algorithm": "k-cycle", "adversary": "uniform",
     "n": 8, "k": 3, "rho": "1/8", "rounds": 1024, "seed": 4,
     "faults": {"jam": "1/10", "seed": 9}},
    {"label": "subsets", "algorithm": "k-subsets", "adversary": "round-robin",
     "n": 7, "k": 3, "rho": "1/8", "rounds": 1024, "seed": 5},
    {"label": "baseline", "algorithm": "duty-cycle", "adversary": "uniform",
     "n": 6, "k": 2, "rho": "1/4", "rounds": 1024, "seed": 6}
  ],
  "grids": [
    {"algorithms": ["k-cycle", "k-clique", "count-hop", "orchestra", "adjust-window"],
     "adversaries": ["uniform", "round-robin"],
     "n": [6, 8], "k": [3], "rho": ["1/8", "1/4", "3/8"], "beta": ["1"],
     "rounds": 1024, "seeds": [5]}
  ]
}"#;

/// A cheap 4-point boundary map (no ensemble, no continuation).
const MAP_SPEC: &str = r#"{
  "template": {"algorithm": "k-cycle", "adversary": "uniform",
               "rounds": 2000, "probe_cap": 1000},
  "axis": "rho", "lo": "0", "hi": "1/2", "tol": 0.01,
  "map": {"n": [6, 9], "k": [2, 3]}
}"#;

/// Run the spec single-process through the real binary; return the
/// output bytes. (Exit status is not asserted: duty-cycle scenarios
/// violate invariants by design and exit non-zero, by contract.)
fn single_process(dir: &Path, spec: &Path, cmd: &str, format: &str) -> Vec<u8> {
    let out_dir = dir.join("single");
    let status = emac()
        .args([cmd, spec.to_str().unwrap(), "--format", format, "--out"])
        .arg(&out_dir)
        .output()
        .unwrap();
    let out_path = out_dir.join(format!(
        "{}.{}",
        if cmd == "campaign" { "campaign" } else { "frontier" },
        format
    ));
    assert!(
        out_path.is_file(),
        "single-process {cmd} must produce {}: {}",
        out_path.display(),
        String::from_utf8_lossy(&status.stderr)
    );
    std::fs::read(&out_path).unwrap()
}

/// Plan `shards` shards, launch every worker as a separate OS process in
/// a shuffled order, wait for all, merge, and return the merged bytes.
fn sharded(dir: &Path, spec: &Path, shards: usize, format: &str, rng: &mut Rng) -> Vec<u8> {
    let fleet = dir.join(format!("fleet-{shards}"));
    let plan = emac()
        .args(["shard", "plan", spec.to_str().unwrap(), "--dir"])
        .arg(&fleet)
        .args(["--shards", &shards.to_string(), "--format", format])
        .output()
        .unwrap();
    assert!(plan.status.success(), "plan: {}", String::from_utf8_lossy(&plan.stderr));

    let mut order: Vec<usize> = (0..shards).collect();
    rng.shuffle(&mut order);
    let workers: Vec<_> = order
        .iter()
        .map(|s| {
            emac()
                .args(["shard", "run", spec.to_str().unwrap(), "--dir"])
                .arg(&fleet)
                .args(["--shard", &s.to_string()])
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .unwrap()
        })
        .collect();
    for mut w in workers {
        w.wait().unwrap();
    }

    let merged = fleet.join(format!("merged.{format}"));
    let out = emac()
        .args(["shard", "merge", "--dir"])
        .arg(&fleet)
        .args(["--out"])
        .arg(&merged)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "merge of {shards} shards: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read(&merged).unwrap()
}

#[test]
fn mixed_campaign_shards_merge_byte_identically_at_every_shard_count() {
    let dir = scratch("campaign");
    let spec = dir.join("spec.json");
    std::fs::write(&spec, MIXED_SPEC).unwrap();
    let reference = single_process(&dir, &spec, "campaign", "csv");
    assert_eq!(reference.iter().filter(|&&b| b == b'\n').count(), 65, "64 rows + header");

    let mut rng = Rng(0x5eed_0001);
    for shards in [1, 2, 3, 7] {
        let merged = sharded(&dir, &spec, shards, "csv", &mut rng);
        assert_eq!(
            merged, reference,
            "{shards}-shard campaign merge must be byte-identical to single-process"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn frontier_map_shards_merge_byte_identically_at_every_shard_count() {
    let dir = scratch("frontier");
    let spec = dir.join("map.json");
    std::fs::write(&spec, MAP_SPEC).unwrap();
    let reference = single_process(&dir, &spec, "frontier", "csv");
    assert_eq!(reference.iter().filter(|&&b| b == b'\n').count(), 5, "4 points + header");

    let mut rng = Rng(0x5eed_0002);
    for shards in [1, 2, 3, 7] {
        let merged = sharded(&dir, &spec, shards, "csv", &mut rng);
        assert_eq!(
            merged, reference,
            "{shards}-shard frontier merge must be byte-identical to single-process"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn jsonl_output_shards_byte_identically_too() {
    let dir = scratch("jsonl");
    let spec = dir.join("spec.json");
    std::fs::write(&spec, MIXED_SPEC).unwrap();
    let reference = single_process(&dir, &spec, "campaign", "jsonl");
    let mut rng = Rng(0x5eed_0003);
    let merged = sharded(&dir, &spec, 2, "jsonl", &mut rng);
    assert_eq!(merged, reference, "jsonl merge must be byte-identical to single-process");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The registry-wide campaign grid of `tests/golden_determinism.rs`,
/// as a spec document: sharding must merge to the same pinned digest
/// the buffered `to_csv`, the streaming sink, and the slim-detail run
/// all produce.
const GOLDEN_GRID_SPEC: &str = r#"{
  "grids": [
    {"algorithms": ["orchestra", "orchestra-nomb", "count-hop", "adjust-window",
                    "k-cycle", "k-cycle:1/2", "k-clique", "k-subsets",
                    "k-subsets-rrw", "duty-cycle"],
     "adversaries": ["uniform", "round-robin"],
     "n": [8], "k": [4], "rho": ["1/8"], "beta": ["1"],
     "rounds": 2048, "seeds": [7]}
  ]
}"#;

/// Kept verbatim in sync with `CAMPAIGN_CSV_GOLDEN` in
/// `tests/golden_determinism.rs`.
const CAMPAIGN_CSV_GOLDEN: &str = "3b17903468572632";

/// Kept verbatim in sync with `FRONTIER_BAND_CSV_GOLDEN` in
/// `tests/golden_determinism.rs`.
const FRONTIER_BAND_CSV_GOLDEN: &str = "a3e0d1df6fb35675";

#[test]
fn sharded_golden_campaign_grid_merges_to_the_pinned_digest() {
    let dir = scratch("golden-campaign");
    let spec = dir.join("grid.json");
    std::fs::write(&spec, GOLDEN_GRID_SPEC).unwrap();
    let mut rng = Rng(0x5eed_0004);
    let merged = sharded(&dir, &spec, 3, "csv", &mut rng);
    assert_eq!(
        fnv_hex(&merged),
        CAMPAIGN_CSV_GOLDEN,
        "sharded registry grid must merge to the pinned campaign CSV digest"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_band_map_with_continuation_merges_to_the_pinned_digest() {
    let dir = scratch("golden-band");
    // The committed ensemble map: 2 points in 1 continuation chain, so
    // a 2-shard plan keeps the chain whole (one slice stays empty and
    // the chain is stolen by whichever worker reaches it first).
    let spec = Path::new("specs/frontier_theorem5_band.json").canonicalize().unwrap();
    let mut rng = Rng(0x5eed_0005);
    let merged = sharded(&dir, &spec, 2, "csv", &mut rng);
    assert_eq!(
        fnv_hex(&merged),
        FRONTIER_BAND_CSV_GOLDEN,
        "sharded band map must merge to the pinned band CSV digest"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
