//! Property-style sampled checks on band maps (house stand-in for a
//! proptest dependency: a pinned xorshift stream drives the sampling,
//! so every run explores the same spec family deterministically).
//!
//! Invariants, over randomly drawn small ensemble maps:
//!
//! * `band_lo <= boundary <= band_hi` on every emitted row;
//! * `agreement == 1.0` exactly when the band is degenerate
//!   (`band_lo == band_hi`) — mixed probes and imperfect agreement
//!   are the same event;
//! * escalation never exceeds `max_seeds` lanes on any probe, and
//!   without an `"escalate"` clause every probe runs exactly
//!   `seeds.len()` lanes.

use emac::registry::Registry;
use emac_core::frontier::{Frontier, FrontierSpec, MemoryMapSink};

/// xorshift64: tiny, seedable, good enough to scatter spec parameters.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[(self.next() % xs.len() as u64) as usize]
    }
}

fn sample_spec(rng: &mut Rng) -> FrontierSpec {
    let n = rng.pick(&[6usize, 9, 12]);
    let k = rng.pick(&[3usize, 4]);
    let rounds = rng.pick(&[1000usize, 2000, 4000]);
    let tol = rng.pick(&["0.03125", "0.015625"]);
    // 2..=5 distinct lane seeds: the uniform adversary is seed-driven,
    // so lanes genuinely diverge near noisy thresholds.
    let lane_count = 2 + (rng.next() % 4) as usize;
    let seeds: Vec<String> = (0..lane_count).map(|_| (rng.next() % 1000).to_string()).collect();
    let escalate = if rng.next().is_multiple_of(2) {
        let max_seeds = lane_count + 1 + (rng.next() % 3) as usize;
        let step = 1 + (rng.next() % 2) as usize;
        format!(",\n  \"escalate\": {{\"max_seeds\": {max_seeds}, \"step\": {step}}}")
    } else {
        String::new()
    };
    let json = format!(
        r#"{{
  "template": {{"algorithm": "k-cycle", "adversary": "uniform",
               "rounds": {rounds}, "probe_cap": {rounds}}},
  "axis": "rho",
  "lo": "0", "hi": "1/2", "tol": {tol},
  "map": {{"n": [{n}], "k": [{k}]}},
  "seeds": [{}]{escalate}
}}"#,
        seeds.join(", ")
    );
    FrontierSpec::parse(&json).unwrap()
}

#[test]
fn sampled_band_maps_satisfy_the_band_invariants() {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    let mut nonempty_bands = 0usize;
    let mut escalating_specs = 0usize;
    for _ in 0..12 {
        let spec = sample_spec(&mut rng);
        let max_lanes = spec.escalate.as_ref().map_or(spec.seeds.len(), |e| e.max_seeds);
        if spec.escalate.is_some() {
            escalating_specs += 1;
        }
        let mut sink = MemoryMapSink::new();
        let summary =
            Frontier::new().threads(2).run_into(&spec, &Registry, &mut sink, None).unwrap();
        assert_eq!(summary.points, summary.completed, "small maps must complete");
        if spec.escalate.is_none() {
            assert_eq!(summary.escalated_probes, 0, "no escalate clause, no escalation");
        }
        for row in sink.into_rows() {
            let band = row.band.expect("ensemble maps always attach band stats");
            let boundary = row.boundary();
            assert!(
                band.lo <= boundary && boundary <= band.hi,
                "band [{}, {}] must bracket boundary {boundary} ({spec:?})",
                band.lo,
                band.hi
            );
            assert_eq!(
                band.agreement == 1.0,
                band.lo == band.hi,
                "agreement {} vs band [{}, {}]: perfect agreement and a \
                 degenerate band are the same event",
                band.agreement,
                band.lo,
                band.hi
            );
            assert!(band.agreement > 0.5, "majority verdicts bound agreement below by 1/2");
            assert!(
                band.max_lanes >= spec.seeds.len() && band.max_lanes <= max_lanes,
                "lanes {} must stay within [{}, {max_lanes}]",
                band.max_lanes,
                spec.seeds.len()
            );
            if band.lo < band.hi {
                nonempty_bands += 1;
            }
        }
    }
    // The sample must actually exercise both regimes, or the iff-check
    // above is vacuous.
    assert!(nonempty_bands > 0, "sampling never produced a disagreeing ensemble");
    assert!(escalating_specs > 0, "sampling never drew an escalate clause");
}
