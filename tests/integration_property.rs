//! Property-based integration tests: random configurations inside each
//! algorithm's guaranteed regime must keep every model invariant, and the
//! leaky bucket must be respected regardless of the adversary. Sampled
//! deterministically (seeded PRNG, fixed case counts) in place of the
//! original proptest strategies.

use emac::adversary::{Scripted, UniformRandom};
use emac::core::prelude::*;
use emac::sim::{Rate, SimConfig, Simulator, SmallRng};

const CASES: u32 = 12;

/// Count-Hop under arbitrary sub-unit rational rates and random traffic
/// keeps invariants and drains.
#[test]
fn count_hop_random_regimes() {
    let mut rng = SmallRng::seed_from_u64(0x1a71);
    for _case in 0..CASES {
        let n = rng.random_range(3..10);
        let num = rng.random_range_u64(1..9);
        let beta = rng.random_range_u64(1..6);
        let seed = rng.random_range_u64(0..1_000);
        let rho = Rate::new(num, 10); // 0.1 .. 0.8
        let report = Runner::new(n)
            .rate(rho)
            .beta(beta)
            .rounds(30_000)
            .drain(15_000)
            .run(&CountHop::new(), Box::new(UniformRandom::new(seed)));
        assert!(report.clean(), "{}", report.violations);
        assert!(report.metrics.max_awake <= 2);
        assert_eq!(report.drained, Some(true));
        assert_eq!(report.metrics.delivered, report.metrics.injected);
    }
}

/// Orchestra at rate 1 with random burstiness: queues below the paper
/// bound, invariants clean.
#[test]
fn orchestra_random_rate_one() {
    let mut rng = SmallRng::seed_from_u64(0x1a72);
    for _case in 0..CASES {
        let n = rng.random_range(3..8);
        let beta = rng.random_range_u64(1..8);
        let seed = rng.random_range_u64(0..1_000);
        let report = Runner::new(n)
            .rate(Rate::one())
            .beta(beta)
            .rounds(40_000)
            .run(&Orchestra::new(), Box::new(UniformRandom::new(seed)));
        assert!(report.clean(), "{}", report.violations);
        assert!(report.metrics.max_awake <= 3);
        let bound = bounds::orchestra_queue_bound(n as u64, beta as f64);
        assert!(
            (report.max_queue() as f64) <= bound,
            "queue {} > bound {bound}",
            report.max_queue()
        );
    }
}

/// k-Cycle with random geometry inside its stability region.
#[test]
fn k_cycle_random_geometry() {
    let mut rng = SmallRng::seed_from_u64(0x1a73);
    for _case in 0..CASES {
        let n = rng.random_range(5..16);
        let k = rng.random_range(3..6);
        let seed = rng.random_range_u64(0..1_000);
        let alg = KCycle::new(k);
        let eff_k = alg.params(n).k();
        let rho = bounds::k_cycle_rate_threshold(n as u64, eff_k as u64).scaled(3, 4);
        let report = Runner::new(n)
            .rate(rho)
            .beta(2)
            .rounds(40_000)
            .run(&alg, Box::new(UniformRandom::new(seed)));
        assert!(report.clean(), "{}", report.violations);
        assert!(report.metrics.max_awake <= eff_k);
    }
}

/// k-Clique with random geometry at its latency rate.
#[test]
fn k_clique_random_geometry() {
    let mut rng = SmallRng::seed_from_u64(0x1a74);
    for _case in 0..CASES {
        let n = rng.random_range(4..13);
        let k = rng.random_range(2..6);
        let seed = rng.random_range_u64(0..1_000);
        let alg = KClique::new(k);
        let eff_k = alg.params(n).k();
        let rho = bounds::k_clique_rate_for_latency(n as u64, eff_k as u64);
        let report = Runner::new(n)
            .rate(rho)
            .beta(2)
            .rounds(60_000)
            .run(&alg, Box::new(UniformRandom::new(seed)));
        assert!(report.clean(), "{}", report.violations);
        assert!(report.metrics.max_awake <= eff_k);
    }
}

/// Scripted traffic through k-Subsets: every packet delivered exactly
/// once regardless of the script.
#[test]
fn k_subsets_scripted_delivery() {
    let mut rng = SmallRng::seed_from_u64(0x1a75);
    for _case in 0..CASES {
        let len = rng.random_range(1..30);
        let script: Vec<(u64, usize, usize)> = (0..len)
            .map(|_| (rng.random_range_u64(0..500), rng.random_range(0..6), rng.random_range(0..6)))
            .filter(|&(_, s, d)| s != d)
            .collect();
        let alg = KSubsets::new(3);
        let gamma = alg.params(6).gamma() as u64;
        let expected = script.len() as u64;
        let cfg = SimConfig::new(6, 3).adversary_type(Rate::new(1, 4), Rate::integer(4));
        let adv = Box::new(Scripted::from_triples(&script));
        let mut sim = Simulator::new(cfg, alg.build(6), adv);
        sim.run(2_000);
        sim.run_until_drained(gamma * 2_000);
        assert!(sim.violations().is_clean(), "{}", sim.violations());
        assert_eq!(sim.metrics().delivered, expected);
    }
}
