//! Property-based integration tests: random configurations inside each
//! algorithm's guaranteed regime must keep every model invariant, and the
//! leaky bucket must be respected regardless of the adversary.

use emac::adversary::{Scripted, UniformRandom};
use emac::core::prelude::*;
use emac::sim::{Rate, SimConfig, Simulator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Count-Hop under arbitrary sub-unit rational rates and random traffic
    /// keeps invariants and drains.
    #[test]
    fn count_hop_random_regimes(
        n in 3usize..10,
        num in 1u64..9,
        beta in 1u64..6,
        seed in 0u64..1_000,
    ) {
        let rho = Rate::new(num, 10); // 0.1 .. 0.8
        let report = Runner::new(n)
            .rate(rho)
            .beta(beta)
            .rounds(30_000)
            .drain(15_000)
            .run(&CountHop::new(), Box::new(UniformRandom::new(seed)));
        prop_assert!(report.clean(), "{}", report.violations);
        prop_assert!(report.metrics.max_awake <= 2);
        prop_assert_eq!(report.drained, Some(true));
        prop_assert_eq!(report.metrics.delivered, report.metrics.injected);
    }

    /// Orchestra at rate 1 with random burstiness: queues below the paper
    /// bound, invariants clean.
    #[test]
    fn orchestra_random_rate_one(
        n in 3usize..8,
        beta in 1u64..8,
        seed in 0u64..1_000,
    ) {
        let report = Runner::new(n)
            .rate(Rate::one())
            .beta(beta)
            .rounds(40_000)
            .run(&Orchestra::new(), Box::new(UniformRandom::new(seed)));
        prop_assert!(report.clean(), "{}", report.violations);
        prop_assert!(report.metrics.max_awake <= 3);
        let bound = bounds::orchestra_queue_bound(n as u64, beta as f64);
        prop_assert!((report.max_queue() as f64) <= bound,
            "queue {} > bound {bound}", report.max_queue());
    }

    /// k-Cycle with random geometry inside its stability region.
    #[test]
    fn k_cycle_random_geometry(
        n in 5usize..16,
        k in 3usize..6,
        seed in 0u64..1_000,
    ) {
        let alg = KCycle::new(k);
        let eff_k = alg.params(n).k();
        let rho = bounds::k_cycle_rate_threshold(n as u64, eff_k as u64).scaled(3, 4);
        let report = Runner::new(n)
            .rate(rho)
            .beta(2)
            .rounds(40_000)
            .run(&alg, Box::new(UniformRandom::new(seed)));
        prop_assert!(report.clean(), "{}", report.violations);
        prop_assert!(report.metrics.max_awake <= eff_k);
    }

    /// k-Clique with random geometry at its latency rate.
    #[test]
    fn k_clique_random_geometry(
        n in 4usize..13,
        k in 2usize..6,
        seed in 0u64..1_000,
    ) {
        let alg = KClique::new(k);
        let eff_k = alg.params(n).k();
        let rho = bounds::k_clique_rate_for_latency(n as u64, eff_k as u64);
        let report = Runner::new(n)
            .rate(rho)
            .beta(2)
            .rounds(60_000)
            .run(&alg, Box::new(UniformRandom::new(seed)));
        prop_assert!(report.clean(), "{}", report.violations);
        prop_assert!(report.metrics.max_awake <= eff_k);
    }

    /// Scripted traffic through k-Subsets: every packet delivered exactly
    /// once regardless of the script.
    #[test]
    fn k_subsets_scripted_delivery(
        triples in proptest::collection::vec((0u64..500, 0usize..6, 0usize..6), 1..30),
    ) {
        let alg = KSubsets::new(3);
        let gamma = alg.params(6).gamma() as u64;
        let script: Vec<(u64, usize, usize)> =
            triples.into_iter().filter(|&(_, s, d)| s != d).collect();
        let expected = script.len() as u64;
        let cfg = SimConfig::new(6, 3).adversary_type(Rate::new(1, 4), Rate::integer(4));
        let adv = Box::new(Scripted::from_triples(&script));
        let mut sim = Simulator::new(cfg, alg.build(6), adv);
        sim.run(2_000);
        sim.run_until_drained(gamma * 2_000);
        prop_assert!(sim.violations().is_clean(), "{}", sim.violations());
        prop_assert_eq!(sim.metrics().delivered, expected);
    }
}
