//! Counting-allocator proof that the engine's round loop is
//! allocation-free in steady state.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up phase (scratch buffers sized, queue slabs and id indexes at
//! their high-water marks), a window of thousands of `Simulator::step`
//! calls must perform **zero** allocations and zero deallocations — while
//! packets are still in flight, so the window exercises scheduling, queue
//! scans, transmission, and delivery, not an idle system.
//!
//! This file holds a single `#[test]`: the test harness runs tests in the
//! same binary concurrently, so a second test's allocations would race the
//! counters. Keep it that way.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use emac::prelude::*;
use emac_adversary::Scripted;
use emac_sim::{NoInjections, Simulator};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTING: Counting = Counting;

/// Run `sim` for `rounds` steps and return (allocations, deallocations).
fn count_allocs(sim: &mut Simulator, rounds: u64) -> (u64, u64) {
    let a0 = ALLOCS.load(Ordering::SeqCst);
    let d0 = DEALLOCS.load(Ordering::SeqCst);
    sim.run(rounds);
    (ALLOCS.load(Ordering::SeqCst) - a0, DEALLOCS.load(Ordering::SeqCst) - d0)
}

#[test]
fn steady_state_steps_do_not_allocate() {
    // --- Case 1: loaded k-Clique system, packets in flight the whole
    // window. A burst of 400 packets is scripted at round 0 (the script
    // then replays to empty Vecs, which do not allocate); k-Clique routes
    // directly, at most one delivery per pair activation (every `m = 15`
    // rounds here), so the backlog outlasts warm-up plus the window.
    let (n, k) = (12usize, 4usize);
    const BURST: u64 = 400;
    let burst: Vec<(u64, usize, usize)> = (0..BURST).map(|_| (0u64, 0usize, 11usize)).collect();
    let cfg = emac_sim::SimConfig::new(n, k)
        .adversary_type(Rate::new(1, 8), Rate::integer(BURST))
        .sample_every(1 << 40); // sample only round 0: no series growth mid-window
    let mut sim =
        Simulator::new(cfg, KClique::new(k).build(n), Box::new(Scripted::from_triples(&burst)));

    // Warm-up: scratch buffers filled, every queue at its high-water mark
    // (the whole burst lands in station 0's queue at round 0).
    sim.run(512);
    assert!(sim.total_queued() > 0, "backlog must still be in flight after warm-up");

    let (allocs, deallocs) = count_allocs(&mut sim, 4_096);
    assert!(sim.total_queued() > 0, "window must have exercised a loaded system");
    assert!(sim.metrics().delivered > 0, "window must have exercised real deliveries");
    assert_eq!(
        (allocs, deallocs),
        (0, 0),
        "steady-state loaded steps must not touch the allocator"
    );

    // The run stays correct after the measured window.
    assert!(sim.run_until_drained(200_000));
    assert_eq!(sim.metrics().delivered + sim.metrics().self_delivered, BURST);
    assert!(sim.violations().is_clean(), "{}", sim.violations());

    // --- Case 2: idle scheduled system (k-Cycle, empty queues, no
    // injections): the pure scheduling loop is also allocation-free.
    let cfg = emac_sim::SimConfig::new(16, 4)
        .adversary_type(Rate::new(1, 8), Rate::integer(2))
        .sample_every(1 << 40);
    let mut sim = Simulator::new(cfg, KCycle::new(4).build(16), Box::new(NoInjections));
    sim.run(256);
    let (allocs, deallocs) = count_allocs(&mut sim, 4_096);
    assert_eq!((allocs, deallocs), (0, 0), "idle scheduled steps must not touch the allocator");

    // --- Case 3: the uncoordinated duty-cycle baseline reshuffles its
    // pseudorandom schedule every round; the shuffle runs in reused
    // scratch, so even this schedule is allocation-free once warm.
    let cfg = emac_sim::SimConfig::new(16, 4)
        .adversary_type(Rate::new(1, 8), Rate::integer(2))
        .sample_every(1 << 40);
    let mut sim = Simulator::new(cfg, DutyCycle::new(4).build(16), Box::new(NoInjections));
    sim.run(256);
    let (allocs, deallocs) = count_allocs(&mut sim, 4_096);
    assert_eq!((allocs, deallocs), (0, 0), "duty-cycle schedule must reuse its shuffle scratch");

    // --- Case 4: rounds with a positive injection budget and a live
    // adversary. The adversary plans through `plan_into` into the engine's
    // reused buffer, and the stable load keeps every queue at or below the
    // high-water mark reached during warm-up, so even rounds that inject,
    // route, and deliver touch the allocator zero times.
    let rho = emac_core::bounds::k_cycle_rate_threshold(16, 4).scaled(4, 5);
    let cfg =
        emac_sim::SimConfig::new(16, 4).adversary_type(rho, Rate::integer(2)).sample_every(1 << 40);
    let mut sim = Simulator::new(cfg, KCycle::new(4).build(16), Box::new(UniformRandom::new(2)));
    sim.run(60_000);
    let injected_before = sim.metrics().injected;
    let delivered_before = sim.metrics().delivered;
    let (allocs, deallocs) = count_allocs(&mut sim, 4_096);
    assert!(
        sim.metrics().injected > injected_before + 100,
        "window must contain many positive-budget injecting rounds"
    );
    assert!(sim.metrics().delivered > delivered_before, "window must deliver packets");
    assert_eq!(
        (allocs, deallocs),
        (0, 0),
        "injecting steady-state rounds must not touch the allocator"
    );
    assert!(sim.violations().is_clean(), "{}", sim.violations());

    // --- Case 5: lockstep seed batch over the Case 4 scenario. Four lanes
    // share one schedule-table row fill per round; the batch driver's own
    // state (shared wake mask, awake list, adversary-view counters) is
    // sized at construction, so a steady-state batch round is as
    // allocation-free as a solo one. Measured via `BatchSimulator::run`
    // (the probing variant returns a fresh `Vec` of trip rounds by design).
    let lanes: Vec<Simulator> = (0..4u64)
        .map(|seed| {
            let cfg = emac_sim::SimConfig::new(16, 4)
                .adversary_type(rho, Rate::integer(2))
                .sample_every(1 << 40);
            Simulator::new(cfg, KCycle::new(4).build(16), Box::new(UniformRandom::new(seed)))
        })
        .collect();
    let mut batch = emac_sim::BatchSimulator::new(lanes);
    assert!(batch.is_lockstep(), "k-cycle lanes must share one schedule table");
    batch.run(60_000);
    let a0 = ALLOCS.load(Ordering::SeqCst);
    let d0 = DEALLOCS.load(Ordering::SeqCst);
    batch.run(4_096);
    let (allocs, deallocs) =
        (ALLOCS.load(Ordering::SeqCst) - a0, DEALLOCS.load(Ordering::SeqCst) - d0);
    assert_eq!(
        (allocs, deallocs),
        (0, 0),
        "steady-state lockstep batch rounds must not touch the allocator"
    );
    for lane in batch.into_lanes() {
        assert!(lane.violations().is_clean(), "{}", lane.violations());
    }

    // --- Case 6: observability stays out of the round loop. An armed
    // Observer (event log + progress line) exists for the whole window,
    // but by construction it is only touched at row/probe boundaries —
    // so steady-state rounds still allocate nothing, while the engine's
    // phase-timer hooks (plain u64 counters) keep advancing per round.
    let cfg =
        emac_sim::SimConfig::new(16, 4).adversary_type(rho, Rate::integer(2)).sample_every(1 << 40);
    let mut sim = Simulator::new(cfg, KCycle::new(4).build(16), Box::new(UniformRandom::new(3)));
    sim.run(60_000);
    let log_path =
        std::env::temp_dir().join(format!("emac-alloc-free-{}.jsonl", std::process::id()));
    let log = emac_core::obs::EventLog::create(&log_path).unwrap();
    let mut observer = emac_core::obs::Observer::new()
        .with_log(log)
        .with_progress(emac_core::obs::Progress::new(emac_core::obs::RunKind::Campaign, 1));
    assert!(observer.is_armed());
    let hooks_before = sim.hooks().rounds;
    let (allocs, deallocs) = count_allocs(&mut sim, 4_096);
    assert_eq!((allocs, deallocs), (0, 0), "armed observability must cost the round loop nothing");
    assert_eq!(sim.hooks().rounds, hooks_before + 4_096, "phase-timer hooks advance every round");
    assert!(sim.hooks().wake_table_rounds > 0, "k-cycle rounds wake via the schedule table");
    // The boundary is where observability spends: the wall clock is read
    // and the row event rendered outside the measured window.
    let wall_us = observer.boundary_us();
    observer.record(&emac_core::obs::ObsEvent::Row {
        index: 0,
        rounds: 4_096,
        clean: true,
        wall_us,
    });
    observer.flush().unwrap();
    let _ = std::fs::remove_file(&log_path);
}
