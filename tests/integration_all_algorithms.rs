//! Cross-crate integration: every algorithm of the paper, driven inside its
//! guaranteed regime by several adversary shapes, must (a) violate no model
//! invariant, (b) respect its energy cap, (c) stay stable, and (d) deliver
//! every packet once injections stop.

use emac::adversary::{Bursty, RoundRobinLoad, SingleTarget, UniformRandom};
use emac::core::prelude::*;
use emac::sim::{Adversary, Rate};

/// Build the adversary menagerie for a system of `n` stations.
fn adversaries(n: usize) -> Vec<(&'static str, Box<dyn Adversary>)> {
    vec![
        ("single-target", Box::new(SingleTarget::new(0, n - 1))),
        ("round-robin", Box::new(RoundRobinLoad::new())),
        ("uniform", Box::new(UniformRandom::new(99))),
        ("bursty", Box::new(Bursty::new(1, 32))),
    ]
}

fn check(alg: &dyn Algorithm, n: usize, rho: Rate, rounds: u64, drain: u64, expect_drain: bool) {
    for (tag, adversary) in adversaries(n) {
        let report =
            Runner::new(n).rate(rho).beta(2).rounds(rounds).drain(drain).run(alg, adversary);
        assert!(report.clean(), "{} vs {tag}: {}", report.algorithm, report.violations);
        assert!(
            report.metrics.max_awake <= report.cap,
            "{} vs {tag}: {} awake exceeds cap {}",
            report.algorithm,
            report.metrics.max_awake,
            report.cap
        );
        assert_ne!(
            report.stability.verdict,
            Verdict::Diverging,
            "{} vs {tag}: {}",
            report.algorithm,
            report.stability
        );
        if expect_drain {
            assert_eq!(report.drained, Some(true), "{} vs {tag} failed to drain", report.algorithm);
            assert_eq!(
                report.metrics.delivered, report.metrics.injected,
                "{} vs {tag}: packets missing after drain",
                report.algorithm
            );
        }
    }
}

#[test]
fn orchestra_in_regime() {
    // rho = 1 is Orchestra's claim; latency may be unbounded mid-run but
    // stopping injections must drain everything.
    check(&Orchestra::new(), 6, Rate::one(), 60_000, 60_000, true);
}

#[test]
fn count_hop_in_regime() {
    check(&CountHop::new(), 6, Rate::new(3, 4), 60_000, 20_000, true);
}

#[test]
fn adjust_window_in_regime() {
    let n = 3;
    let w = emac::core::adjust_window::steady_window_size(n, Rate::new(1, 2), 2);
    check(&AdjustWindow::new(), n, Rate::new(1, 2), 8 * w, 6 * w, true);
}

#[test]
fn k_cycle_in_regime() {
    let rho = bounds::k_cycle_rate_threshold(9, 3).scaled(4, 5);
    check(&KCycle::new(3), 9, rho, 120_000, 60_000, true);
}

#[test]
fn k_clique_in_regime() {
    let rho = bounds::k_clique_rate_for_latency(8, 4);
    check(&KClique::new(4), 8, rho, 150_000, 100_000, true);
}

#[test]
fn k_subsets_in_regime() {
    let rho = bounds::k_subsets_rate_threshold(6, 3);
    check(&KSubsets::new(3), 6, rho, 150_000, 150_000, true);
}

#[test]
fn k_subsets_rrw_in_regime() {
    let rho = bounds::k_subsets_rate_threshold(6, 3).scaled(3, 4);
    check(&KSubsets::with_rrw(3), 6, rho, 150_000, 150_000, true);
}

#[test]
fn broadcast_blocks_in_regime() {
    // The substrate algorithms run with cap = n.
    use emac::broadcast::{build_mbtf, build_of_rrw, build_rrw};
    use emac::sim::{SimConfig, Simulator};
    for (name, built) in
        [("rrw", build_rrw(5)), ("of-rrw", build_of_rrw(5)), ("mbtf", build_mbtf(5))]
    {
        let cfg = SimConfig::new(5, 5).adversary_type(Rate::new(4, 5), Rate::integer(2));
        let mut sim = Simulator::new(cfg, built, Box::new(UniformRandom::new(5)));
        sim.run(40_000);
        assert!(sim.violations().is_clean(), "{name}: {}", sim.violations());
        assert!(sim.run_until_drained(20_000), "{name} failed to drain");
    }
}
