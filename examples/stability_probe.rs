//! Probe the stability frontier of an energy-oblivious algorithm by binary
//! search. The paper brackets `k-Cycle` between claimed-stable
//! `(k−1)/(n−1)` (Theorem 5) and proven-unstable `k/n` (Theorem 6) — but
//! under a flood *concentrated* into the least-on station the measured
//! frontier sits at that station's activity share `1/ℓ ≈ (k−1)/n`, *below*
//! the Theorem-5 claim (the reproduction finding recorded in
//! EXPERIMENTS.md, Row 5/F4). This probe locates it precisely.
//!
//! ```text
//! cargo run --release --example stability_probe
//! ```

use emac::adversary::LeastOnStation;
use emac::core::prelude::*;
use emac::sim::Rate;

fn main() {
    let (n, k) = (9usize, 3usize);
    let alg = KCycle::new(k);
    let params = alg.params(n);
    let horizon = params.delta() * params.groups() as u64;

    let lower = bounds::k_cycle_rate_threshold(n as u64, k as u64); // (k-1)/(n-1)
    let upper = bounds::oblivious_rate_threshold(n as u64, k as u64); // k/n
    let share = Rate::new(1, params.groups() as u64); // home-group activity share
    println!("k-Cycle n={n} k={k}: claimed stable below {lower}, unstable above {upper}");
    println!("single-station activity share 1/l = {share}");
    println!("binary search of the empirical frontier (least-on flood, 200k rounds/probe)\n");

    // Search over rho = x/1000 from well below the activity share up past k/n.
    let mut lo = share.num() * 1000 / share.den() / 2; // stable side
    let mut hi = upper.num() * 1000 / upper.den() + 50; // unstable side
    while hi - lo > 5 {
        let mid = (lo + hi) / 2;
        let rho = Rate::new(mid, 1000);
        let report = Runner::new(n).rate(rho).beta(2).rounds(200_000).run_against(&alg, |s| {
            Box::new(LeastOnStation::new(s.expect("oblivious"), n, horizon))
        });
        let diverging = report.stability.verdict == Verdict::Diverging;
        println!(
            "  rho = {:.3}  slope {:+.4}  -> {:?}",
            rho.as_f64(),
            report.stability.slope,
            report.stability.verdict
        );
        if diverging {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let frontier = (lo + hi) as f64 / 2.0 / 1000.0;
    println!(
        "\nempirical frontier ≈ {:.3}: near the activity share {:.3} (and below the",
        frontier,
        share.as_f64()
    );
    println!(
        "claimed {:.3} — the concentration gap documented in EXPERIMENTS.md Row 5/F4);",
        lower.as_f64()
    );
    println!("well below the Theorem-6 impossibility bound {:.3}.", upper.as_f64());
    assert!(frontier <= upper.as_f64() + 0.05, "cannot beat Theorem 6");
    assert!(frontier >= share.as_f64() - 0.08, "must roughly attain the activity share");
}
