//! Bursty telemetry to a sink: a cluster of battery-powered sensors shares
//! a channel with one collector station. Sensors fire in bursts (the
//! leaky-bucket β), all packets are addressed to the sink — the
//! concentrated workload that separates the algorithms' strategies:
//!
//! * `Orchestra` (cap 3) rides out rate-1 bursts by letting the loaded
//!   station keep the channel (move-big-to-front);
//! * `k-Clique` (cap 4, oblivious, direct) partitions time among pairs and
//!   needs its injection rate below `k²/(2n(2n−k))`;
//! * `Adjust-Window` (cap 2, plain packets) gossips queue sizes and
//!   adapts its window to the burst volume.
//!
//! ```text
//! cargo run --release --example sensor_burst
//! ```

use emac::adversary::Bursty;
use emac::core::prelude::*;
use emac::sim::Rate;

fn main() {
    let n = 8;
    let sink = n - 1;
    let beta = 8u64;

    println!("sensor cluster: n={n}, sink=station {sink}, bursts of up to β={beta}\n");
    println!(
        "{:<34} {:>5} {:>9} {:>12} {:>12} {:>10}",
        "algorithm", "cap", "rho", "latency max", "latency p90", "max queue"
    );

    // Each algorithm is driven at a rate inside its own guaranteed regime.
    let cases: Vec<(Box<dyn Algorithm>, Rate)> = vec![
        (Box::new(Orchestra::new()), Rate::one()),
        (Box::new(AdjustWindow::new()), Rate::new(1, 2)),
        (Box::new(KClique::new(4)), bounds::k_clique_rate_for_latency(n as u64, 4)),
        (Box::new(KCycle::new(4)), bounds::k_cycle_rate_threshold(n as u64, 4).scaled(4, 5)),
    ];

    for (alg, rho) in cases {
        // sensors burst every 64 rounds from station 1 — every packet for the sink
        let adversary = Box::new(Bursty::new(1, 64));
        let report =
            Runner::new(n).rate(rho).beta(beta).rounds(250_000).run(alg.as_ref(), adversary);
        println!(
            "{:<34} {:>5} {:>9.4} {:>12} {:>12} {:>10}",
            report.algorithm,
            report.cap,
            rho.as_f64(),
            report.latency(),
            report.metrics.delay.quantile(0.9),
            report.max_queue()
        );
        assert!(report.clean(), "{}: {}", report.algorithm, report.violations);
    }

    println!("\nOrchestra sustains the full channel rate at cap 3; the oblivious algorithms");
    println!("trade rate for predictable wake-ups; Adjust-Window does it with plain packets.");
}
