//! The paper's motivating scenario: an under-utilised office Ethernet
//! segment (Gupta–Singh [23]: LANs are idle most of the time) where
//! switching interfaces off saves energy — if the routing algorithm can
//! still deliver the traffic that does arrive.
//!
//! A work day is simulated as alternating quiet and busy spells (the
//! adversary is leaky-bucket constrained either way). Three configurations
//! compete on the same traffic:
//!
//! * `RRW` with every station always on (no energy cap) — the baseline;
//! * `Count-Hop` at the minimum energy cap 2;
//! * `k-Cycle` at cap 4 (oblivious: stations can be woken by a dumb timer).
//!
//! The output is an energy-vs-latency table: the energy-capped algorithms
//! cut station-rounds by ~n/2 and ~n/4 at a bounded latency cost.
//!
//! ```text
//! cargo run --release --example office_lan
//! ```

use emac::adversary::{Alternating, Bursty};
use emac::broadcast::build_rrw;
use emac::core::prelude::*;
use emac::sim::{Adversary, Injection, Rate, Round, SimConfig, Simulator, SystemView};

/// Diurnal traffic: bursts between desks 0..5 during "office hours"
/// (even 10k-round blocks), near-silence otherwise.
struct OfficeTraffic {
    busy: Alternating,
    quiet: Bursty,
}

impl OfficeTraffic {
    fn new() -> Self {
        Self { busy: Alternating::new((0, 5), (3, 1), 500), quiet: Bursty::new(2, 2_000) }
    }
}

impl Adversary for OfficeTraffic {
    fn plan(&mut self, round: Round, budget: usize, view: &SystemView<'_>) -> Vec<Injection> {
        if (round / 10_000).is_multiple_of(2) {
            self.busy.plan(round, budget, view)
        } else {
            self.quiet.plan(round, budget, view)
        }
    }
}

fn main() {
    let n = 12;
    let rounds = 160_000;
    let rho = Rate::new(1, 8); // the LAN is under-utilised
    let beta = Rate::integer(4);

    println!("office LAN, n={n}, rho={rho}, beta=4, {rounds} rounds of mixed load\n");
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "configuration", "cap", "energy/round", "latency max", "latency p50", "clean"
    );

    // Baseline: RRW with all stations switched on.
    let cfg = SimConfig::new(n, n).adversary_type(rho, beta).sample_every(512);
    let mut sim = Simulator::new(cfg, build_rrw(n), Box::new(OfficeTraffic::new()));
    sim.run(rounds);
    print_line("RRW (always on, baseline)", n, &sim);

    // Count-Hop at the minimum cap.
    for (label, alg, cap) in [
        ("Count-Hop (cap 2)", Box::new(CountHop::new()) as Box<dyn Algorithm>, 2),
        ("k-Cycle (cap 4, oblivious)", Box::new(KCycle::new(4)), 4),
    ] {
        let cfg = SimConfig::new(n, cap).adversary_type(rho, beta).sample_every(512);
        let mut sim = Simulator::new(cfg, alg.build(n), Box::new(OfficeTraffic::new()));
        sim.run(rounds);
        print_line(label, cap, &sim);
    }

    println!("\nenergy saving comes from switched-off stations; the energy cap bounds the");
    println!("worst round, and the measured energy/round shows the realised average.");
}

fn print_line(label: &str, cap: usize, sim: &Simulator) {
    let m = sim.metrics();
    println!(
        "{:<28} {:>10} {:>12.2} {:>12} {:>12} {:>8}",
        label,
        cap,
        m.energy_per_round(),
        m.delay.max(),
        m.delay.quantile(0.5),
        if sim.violations().is_clean() { "yes" } else { "NO" }
    );
    assert!(sim.violations().is_clean(), "{}", sim.violations());
}
