//! Quickstart: simulate `Count-Hop` (energy cap 2) on an 8-station shared
//! channel against a random leaky-bucket adversary, and print the paper's
//! performance measures.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use emac::adversary::UniformRandom;
use emac::core::prelude::*;
use emac::sim::Rate;

fn main() {
    // A (rho, beta) = (1/2, 2) adversary injecting uniformly at random.
    let report = Runner::new(8)
        .rate(Rate::new(1, 2))
        .beta(2)
        .rounds(200_000)
        .drain(20_000)
        .run(&CountHop::new(), Box::new(UniformRandom::new(42)));

    println!("{report}\n");

    // Compare against Theorem 3's bound shape.
    let bound = bounds::count_hop_impl_latency_bound(8, 0.5, 2.0);
    println!(
        "latency {} vs bound 2(2n²+β)/(1−ρ) = {:.0}  ({:.2}x)",
        report.latency(),
        bound,
        report.latency() as f64 / bound
    );
    println!(
        "energy: {:.2} stations on per round (cap {})",
        report.metrics.energy_per_round(),
        report.cap
    );
    assert!(report.clean(), "model invariants violated: {}", report.violations);
    assert_eq!(report.drained, Some(true), "all packets must eventually be delivered");
}
