//! Diagnosing an execution: trace the channel round by round and plot the
//! queue trajectory — the workflow for understanding *why* a configuration
//! diverges, demonstrated on the cap-2 impossibility (Theorem 2).
//!
//! ```text
//! cargo run --release --example diagnose
//! ```

use emac::adversary::SingleTarget;
use emac::core::prelude::*;
use emac::sim::{render_delay_histogram, render_series, Rate, SimConfig, Simulator};

fn main() {
    let n = 6;

    // Count-Hop at rate 1 with cap 2: provably unstable (Theorem 2).
    let cfg = SimConfig::new(n, 2).adversary_type(Rate::one(), Rate::integer(2)).sample_every(256);
    let mut sim =
        Simulator::new(cfg, CountHop::new().build(n), Box::new(SingleTarget::new(0, n - 2)));
    sim.enable_trace(12);
    sim.run(120_000);

    println!("== Count-Hop, n={n}, cap 2, rho = 1 (single-target flood) ==\n");
    println!("queue trajectory (diverging — Theorem 2):");
    print!("{}", render_series(&sim.metrics().queue_series, 64, 8));
    println!("\ndelay distribution of what *was* delivered:");
    print!("{}", render_delay_histogram(&sim.metrics().delay, 40));
    println!("\nlast rounds on the channel:");
    print!("{}", sim.trace().expect("enabled").render());
    println!(
        "\nslope {:+.4} pkt/round, backlog {} — the counting overhead can never be repaid at rate 1.",
        sim.metrics().queue_growth_slope(),
        sim.metrics().outstanding()
    );

    // Same traffic under Orchestra at cap 3: flat.
    let cfg = SimConfig::new(n, 3).adversary_type(Rate::one(), Rate::integer(2)).sample_every(256);
    let mut sim =
        Simulator::new(cfg, Orchestra::new().build(n), Box::new(SingleTarget::new(0, n - 2)));
    sim.run(120_000);
    println!("\n== Orchestra, n={n}, cap 3, same traffic ==\n");
    print!("{}", render_series(&sim.metrics().queue_series, 64, 8));
    println!(
        "slope {:+.4} pkt/round — one more unit of energy buys rate-1 stability.",
        sim.metrics().queue_growth_slope()
    );
    assert!(sim.violations().is_clean());
}
