//! # emac — energy-efficient adversarial routing on shared channels
//!
//! Facade crate for the reproduction of *"Energy Efficient Adversarial
//! Routing in Shared Channels"* (Chlebus, Hradovich, Jurdziński, Klonowski,
//! Kowalski — SPAA 2019): deterministic distributed routing algorithms on
//! multiple access channels subject to an energy cap, evaluated against
//! leaky-bucket adversaries.
//!
//! The workspace is organised as:
//!
//! * [`sim`] — the round-synchronous channel simulator (model substrate);
//! * [`adversary`] — leaky-bucket adversaries, from simple injection
//!   patterns to the constructive lower-bound adversaries of the paper;
//! * [`broadcast`] — the broadcast building blocks from the cited prior
//!   work (RRW, OF-RRW, MBTF);
//! * [`core`] — the paper's six routing algorithms, the Table-1 bound
//!   formulas, and the experiment runner.
//!
//! See the `examples/` directory for runnable scenarios and
//! `crates/bench` for the Table-1 reproduction harness.

#![forbid(unsafe_code)]

pub use emac_adversary as adversary;
pub use emac_broadcast as broadcast;
pub use emac_core as core;
pub use emac_sim as sim;

pub mod cli;
pub mod registry;

/// Convenience re-exports covering the common experiment workflow.
pub mod prelude {
    pub use emac_adversary::prelude::*;
    pub use emac_core::prelude::*;
    pub use emac_sim::{Rate, SimConfig, Simulator};
}
