//! `emac` — command-line driver for the simulator.
//!
//! ```text
//! emac run --alg count-hop --n 8 --rho 1/2 --beta 2 --rounds 100000 \
//!          --adversary uniform --seed 7 [--drain 20000] [--trace 40] \
//!          [--probe-cap 5000] [--jam 1/10 | --faults '{"jam":"1/10","seed":7}']
//! emac campaign spec.json [--threads N] [--out DIR]
//!               [--format csv|jsonl] [--detail full|slim] [--resume] [--limit M]
//!               [--progress] [--events FILE]
//! emac campaign --example
//! emac frontier template.json [--axis rho|beta|k|ell|jam_rate] [--tol T] [--escalate S[:D]]
//!               [--threads N] [--out DIR] [--format csv|jsonl] [--resume] [--max-waves M]
//!               [--progress] [--events FILE]
//! emac frontier --example
//! emac shard plan spec.json --dir DIR --shards D [--format csv|jsonl] [--detail full|slim]
//! emac shard run spec.json --dir DIR --shard S [--resume] [--threads N] [--progress]
//! emac shard merge --dir DIR [--out FILE]
//! emac shard status --dir DIR
//! emac obs report events.jsonl...
//! emac list
//! ```
//!
//! `run` prints the standard run report; `campaign` executes a JSON
//! scenario spec (see `emac campaign --example`) in parallel. Without
//! `--format` it buffers results and writes `campaign.json` +
//! `campaign.csv`; with `--format` it **streams** each result to
//! `campaign.csv` or `campaign.jsonl` in constant memory, maintains an
//! fsync'd `campaign.ckpt` next to the output, and `--resume` continues a
//! killed (or `--limit`-bounded) campaign where it stopped. Both modes
//! exit non-zero if any run violates a model invariant (useful in CI).
//! `frontier` bisects a stability boundary across a map of `(n, k)`
//! points (see `emac_core::frontier`) with the same checkpoint/resume
//! discipline. `shard` splits either kind of run across a fleet of
//! independent workers that share a work-stealing claim table and merge
//! back to bytes identical to a single-process run (see
//! `emac_core::shard`). `--progress` renders a live stderr line and
//! `--events` appends a structured JSONL event log (`emac_core::obs`);
//! neither touches output bytes or digests. `obs report` aggregates one
//! or more event logs into rate and latency summaries. All parsing and
//! construction logic lives in [`emac::cli`] and [`emac::registry`].

use std::path::Path;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Instant;

use emac::cli;
use emac::core::campaign::{
    parse_campaign_spec, spec_list_digest, truncate_after_lines, Campaign, Checkpoint,
    CsvStreamSink, DurableFile, JsonLinesSink, ResultSink, ScenarioSpec, TallySink,
};
use emac::core::frontier::{
    CsvMapSink, EscalateSpec, Frontier, FrontierCheckpoint, FrontierSpec, JsonMapSink, MapSink,
    SearchAxis,
};
use emac::core::prelude::*;
use emac::core::shard::{ShardPlan, ShardRunner};
use emac::core::{EventLog, ObsEvent, ObsReport, ObservedSink, Observer, Progress, RunKind};
use emac::registry::{Registry, ADVERSARIES, ALGORITHMS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("campaign") => campaign(&args[1..]),
        Some("frontier") => frontier(&args[1..]),
        Some("shard") => shard(&args[1..]),
        Some("obs") => obs(&args[1..]),
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        _ => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage:\n  emac run --alg <name> --n <N> [--k <K>] [--rho P/Q] [--beta B]\n           \
         [--rounds R] [--adversary <name>] [--seed S] [--seeds A,B,C|N] [--drain R]\n           \
         [--trace N] [--cap C] [--target S] [--dest S] [--period R] [--horizon R]\n           \
         [--probe-cap Q] [--jam P/Q | --faults JSON]\n  \
         emac campaign <spec.json> [--threads N] [--out DIR]\n           \
         [--format csv|jsonl] [--detail full|slim] [--resume] [--limit M]\n           \
         [--progress] [--events FILE]\n  \
         emac campaign --example   # print a commented example spec\n  \
         emac frontier <template.json> [--axis rho|beta|k|ell|jam_rate] [--tol T]\n           \
         [--escalate S[:D]] [--threads N] [--out DIR] [--format csv|jsonl]\n           \
         [--resume] [--max-waves M] [--progress] [--events FILE]\n  \
         emac frontier --example   # print an example template\n  \
         emac shard plan <spec.json> --dir DIR --shards D [--format csv|jsonl] [--detail full|slim]\n  \
         emac shard run <spec.json> --dir DIR --shard S [--resume] [--threads N] [--progress]\n  \
         emac shard merge --dir DIR [--out FILE]\n  \
         emac shard status --dir DIR\n  \
         emac obs report <events.jsonl>...\n  \
         emac list"
    );
}

fn list() {
    println!("algorithms (--alg):");
    for (name, what) in ALGORITHMS {
        println!("  {name:<15} {what}");
    }
    println!("adversaries (--adversary):");
    for (name, what) in ADVERSARIES {
        println!("  {name:<15} {what}");
    }
}

const EXAMPLE_SPEC: &str = r#"{
  "scenarios": [
    {"label": "one-off run", "algorithm": "count-hop", "adversary": "uniform",
     "n": 8, "rho": "1/2", "beta": "2", "rounds": 100000, "drain": 20000, "seed": 7}
  ],
  "grids": [
    {"algorithms": ["k-cycle", "k-clique"], "adversaries": ["uniform"],
     "n": [9, 13], "k": [3, 4], "rho": ["1/5", "1/4"], "beta": ["2"],
     "rounds": 100000, "seeds": [1, 2]}
  ]
}"#;

fn campaign(args: &[String]) -> ExitCode {
    let opts = match cli::parse_campaign(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    if opts.example {
        println!("{EXAMPLE_SPEC}");
        return ExitCode::SUCCESS;
    }
    let text = match std::fs::read_to_string(&opts.spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.spec_path);
            return ExitCode::from(2);
        }
    };
    let specs = match parse_campaign_spec(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.spec_path);
            return ExitCode::from(2);
        }
    };

    let mut executor = Campaign::new().detail(opts.detail);
    if let Some(t) = opts.threads {
        executor = executor.threads(t);
    }
    match opts.format {
        None => campaign_buffered(&executor, &specs, &opts.out_dir),
        Some(format) => campaign_streamed(&executor, &specs, &opts, format),
    }
}

/// Legacy buffered mode: hold every report, print the full table, write
/// `campaign.json` + `campaign.csv`.
fn campaign_buffered(executor: &Campaign, specs: &[ScenarioSpec], out_dir: &str) -> ExitCode {
    eprintln!("running {} scenarios...", specs.len());
    let result = executor.run(specs, &Registry);

    for run in &result.runs {
        match &run.outcome {
            Ok(report) => println!(
                "{:<64} latency {:>8} queue {:>8} {:<11} {}",
                run.spec.display_label(),
                report.latency(),
                report.max_queue(),
                format!("{:?}", report.stability.verdict),
                if report.clean() { "clean" } else { "VIOLATIONS" },
            ),
            Err(e) => println!("{:<64} ERROR {e}", run.spec.display_label()),
        }
    }
    println!("{}", result.summary());

    if let Err(e) = result.write_files(Path::new(out_dir)) {
        eprintln!("error: writing results to {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_dir}/campaign.json and {out_dir}/campaign.csv");

    if result.all_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Streaming mode: constant-memory export with a checkpoint next to it.
fn campaign_streamed(
    executor: &Campaign,
    specs: &[ScenarioSpec],
    opts: &cli::CampaignOpts,
    format: cli::CampaignFormat,
) -> ExitCode {
    let dir = Path::new(&opts.out_dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: creating {}: {e}", opts.out_dir);
        return ExitCode::FAILURE;
    }
    let out_path = dir.join(format.file_name());
    let ckpt_path = dir.join("campaign.ckpt");
    // The checkpoint digest binds the spec list AND the output-shaping
    // options: resuming the same specs with a different --format or
    // --detail would interleave incompatible rows, so it is refused the
    // same way an edited spec file is.
    let digest = {
        let mut h = emac::core::digest::Fnv64::new();
        h.u64(spec_list_digest(specs));
        h.str(format.file_name());
        h.str(match opts.detail {
            emac::core::MetricsDetail::Full => "full",
            emac::core::MetricsDetail::Slim => "slim",
        });
        h.finish()
    };
    let ckpt = if opts.resume {
        Checkpoint::resume(&ckpt_path, digest, specs.len())
    } else {
        Checkpoint::fresh(&ckpt_path, digest, specs.len())
    };
    let mut ckpt = match ckpt {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let already = ckpt.completed();

    // Reconcile the output with the checkpoint: keep exactly the
    // checkpointed rows (plus the CSV header), dropping any unrecorded
    // tail a crash left behind — those scenarios re-execute below.
    if already > 0 {
        let header_lines = u64::from(format == cli::CampaignFormat::Csv);
        match truncate_after_lines(&out_path, already as u64 + header_lines) {
            Ok(Some(0)) => {}
            Ok(Some(dropped)) => {
                eprintln!("note: dropped {dropped} bytes of unrecorded output from a previous run")
            }
            Ok(None) => {
                eprintln!(
                    "error: {} holds fewer rows than campaign.ckpt records ({already}); \
                     refusing to resume against a modified output",
                    out_path.display()
                );
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!(
                    "error: cannot reconcile {} with its checkpoint: {e}",
                    out_path.display()
                );
                return ExitCode::from(2);
            }
        }
    }

    let mut todo = ckpt.remaining();
    if todo.is_empty() {
        println!(
            "all {} scenarios already complete in {}; nothing to do",
            specs.len(),
            out_path.display()
        );
        return ExitCode::SUCCESS;
    }
    if let Some(limit) = opts.limit {
        todo.truncate(limit);
    }

    let file = if already > 0 {
        std::fs::OpenOptions::new().append(true).open(&out_path)
    } else {
        std::fs::File::create(&out_path)
    };
    let file = match file {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: opening {}: {e}", out_path.display());
            return ExitCode::FAILURE;
        }
    };
    // Buffered, but fsync'd on every sink.sync() — the executor makes each
    // row durable before its checkpoint line is appended.
    let writer = DurableFile::new(file);

    eprintln!(
        "running {} of {} scenarios ({} already complete)...",
        todo.len(),
        specs.len(),
        already
    );
    // The observer sits strictly outside the row bytes: it wraps the sink,
    // so arming it cannot change what lands in the output or the digest.
    let observer = match build_observer(
        RunKind::Campaign,
        todo.len() as u64,
        opts.progress,
        opts.events.as_deref(),
        opts.resume,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let obs = Mutex::new(observer);
    obs.lock()
        .expect("observer poisoned")
        .record(&ObsEvent::RunStarted { kind: RunKind::Campaign, total: todo.len() as u64 });
    let started = Instant::now();
    let (outcome, ok, unclean, failed) = match format {
        cli::CampaignFormat::Csv => {
            let inner = if already > 0 {
                CsvStreamSink::appending(writer)
            } else {
                CsvStreamSink::new(writer)
            };
            run_tallied(
                executor,
                specs,
                &todo,
                TallySink::new(ObservedSink::new(inner, &obs)),
                &mut ckpt,
            )
        }
        cli::CampaignFormat::JsonLines => run_tallied(
            executor,
            specs,
            &todo,
            TallySink::new(ObservedSink::new(JsonLinesSink::new(writer), &obs)),
            &mut ckpt,
        ),
    };
    let mut observer = obs.into_inner().expect("observer poisoned");
    let rounds = observer.rounds_seen();
    let finished = observer.finish(&ObsEvent::RunFinished {
        kind: RunKind::Campaign,
        done: (ok + unclean + failed) as u64,
        wall_ms: started.elapsed().as_millis() as u64,
        rounds,
    });
    if let Err(e) = finished {
        eprintln!("warning: event log: {e}");
    }
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        eprintln!("{} scenarios checkpointed; rerun with --resume to continue", ckpt.completed());
        return ExitCode::FAILURE;
    }
    println!(
        "{} of {} scenarios complete in {} ({} this run: {} ok, {} with violations, {} failed)",
        ckpt.completed(),
        specs.len(),
        out_path.display(),
        ok + unclean + failed,
        ok,
        unclean,
        failed
    );
    if ckpt.completed() < specs.len() {
        println!("rerun with --resume to continue");
    }
    if failed == 0 && unclean == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_tallied<S: ResultSink>(
    executor: &Campaign,
    specs: &[ScenarioSpec],
    todo: &[usize],
    mut sink: TallySink<S>,
    ckpt: &mut Checkpoint,
) -> (Result<(), String>, usize, usize, usize) {
    let outcome = executor.run_subset(specs, todo, &Registry, &mut sink, Some(ckpt));
    (outcome, sink.ok(), sink.unclean(), sink.failed())
}

/// Build the observer a CLI run asked for: `--events` arms the durable
/// JSONL log (appending — with torn-tail repair — when `--resume` is
/// set), `--progress` the live stderr line. Neither flag leaves the
/// observer disarmed: every record is a no-op and no clock is read.
fn build_observer(
    kind: RunKind,
    total: u64,
    progress: bool,
    events: Option<&str>,
    resume: bool,
) -> Result<Observer, String> {
    let mut observer = Observer::new();
    if let Some(path) = events {
        let path = Path::new(path);
        let log = if resume { EventLog::append(path) } else { EventLog::create(path) }
            .map_err(|e| format!("event log {}: {e}", path.display()))?;
        observer = observer.with_log(log);
    }
    if progress {
        observer = observer.with_progress(Progress::new(kind, total));
    }
    Ok(observer)
}

/// `emac obs report`: aggregate one or more event logs into rate and
/// latency summaries. Exits non-zero on an unreadable file or a
/// malformed event line — a log that does not round-trip through the
/// parser is a bug, not noise to skip.
fn obs(args: &[String]) -> ExitCode {
    let opts = match cli::parse_obs(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    let mut report = ObsReport::default();
    for path in &opts.files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = report.ingest(&text) {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
    }
    print!("{}", report.render());
    ExitCode::SUCCESS
}

const EXAMPLE_FRONTIER: &str = r#"{
  "template": {"algorithm": "k-cycle", "adversary": "spread-from-one",
               "target": 1, "beta": "1", "rounds": 150000, "probe_cap": 5000},
  "axis": "rho",
  "lo": "0.5 * group_share",
  "hi": "1.25 * k_cycle_threshold",
  "tol": 0.01,
  "map": {"n": [9, 13], "k": [3]}
}"#;

/// `emac frontier`: adaptive stability-boundary mapping with
/// checkpoint/resume (see `emac_core::frontier`).
fn frontier(args: &[String]) -> ExitCode {
    let opts = match cli::parse_frontier(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    if opts.example {
        println!("{EXAMPLE_FRONTIER}");
        return ExitCode::SUCCESS;
    }
    let text = match std::fs::read_to_string(&opts.spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.spec_path);
            return ExitCode::from(2);
        }
    };
    let mut spec = match FrontierSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.spec_path);
            return ExitCode::from(2);
        }
    };
    // CLI overrides apply before the digest, so a resume must repeat them.
    if let Some(axis) = &opts.axis {
        spec.axis = match SearchAxis::parse(axis) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: --axis: {e}");
                return ExitCode::from(2);
            }
        };
    }
    if let Some(tol) = opts.tol {
        spec.tol = tol;
    }
    if let Some((max_seeds, step)) = opts.escalate {
        spec.escalate = Some(EscalateSpec { max_seeds, step });
    }
    if let Err(e) = spec.validate() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }

    let dir = Path::new(&opts.out_dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: creating {}: {e}", opts.out_dir);
        return ExitCode::FAILURE;
    }
    let out_path = dir.join(opts.format.file_name());
    let ckpt_path = dir.join("frontier.ckpt");
    let digest = spec.digest(opts.format.file_name());
    let points = spec.points().len();
    let ckpt = if opts.resume {
        FrontierCheckpoint::resume(&ckpt_path, digest, points)
    } else {
        FrontierCheckpoint::fresh(&ckpt_path, digest, points)
    };
    let mut ckpt = match ckpt {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let already = ckpt.rows_written();

    // Reconcile the output with the checkpoint: keep exactly the rows it
    // claims durable (plus the CSV header); anything after re-emits.
    if already > 0 {
        let header_lines = u64::from(opts.format == cli::FrontierFormat::Csv);
        match truncate_after_lines(&out_path, already as u64 + header_lines) {
            Ok(Some(0)) => {}
            Ok(Some(dropped)) => {
                eprintln!("note: dropped {dropped} bytes of unrecorded output from a previous run")
            }
            Ok(None) => {
                eprintln!(
                    "error: {} holds fewer rows than frontier.ckpt records ({already}); \
                     refusing to resume against a modified output",
                    out_path.display()
                );
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!(
                    "error: cannot reconcile {} with its checkpoint: {e}",
                    out_path.display()
                );
                return ExitCode::from(2);
            }
        }
    }

    let file = if already > 0 {
        std::fs::OpenOptions::new().append(true).open(&out_path)
    } else {
        std::fs::File::create(&out_path)
    };
    let file = match file {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: opening {}: {e}", out_path.display());
            return ExitCode::FAILURE;
        }
    };
    let writer = DurableFile::new(file);

    let mut engine = Frontier::new();
    if let Some(t) = opts.threads {
        engine = engine.threads(t);
    }
    if let Some(m) = opts.max_waves {
        engine = engine.max_waves(m);
    }
    eprintln!(
        "mapping {points} point(s) along {} to tol {} ({already} already complete)...",
        spec.axis.name(),
        spec.tol
    );
    // Observability wraps the engine from the outside: probe verdicts,
    // row bytes, and the checkpoint are computed before any event fires.
    let remaining = (points - already) as u64;
    let mut observer = match build_observer(
        RunKind::Frontier,
        remaining,
        opts.progress,
        opts.events.as_deref(),
        opts.resume,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    observer.record(&ObsEvent::RunStarted { kind: RunKind::Frontier, total: remaining });
    let started = Instant::now();
    let outcome = match opts.format {
        cli::FrontierFormat::Csv => {
            let mut sink =
                if already > 0 { CsvMapSink::appending(writer) } else { CsvMapSink::new(writer) };
            engine.run_into_observed(
                &spec,
                &Registry,
                &mut sink as &mut dyn MapSink,
                Some(&mut ckpt),
                &mut observer,
            )
        }
        cli::FrontierFormat::JsonLines => {
            let mut sink = JsonMapSink::new(writer);
            engine.run_into_observed(
                &spec,
                &Registry,
                &mut sink as &mut dyn MapSink,
                Some(&mut ckpt),
                &mut observer,
            )
        }
    };
    let rounds = observer.rounds_seen();
    let finished = observer.finish(&ObsEvent::RunFinished {
        kind: RunKind::Frontier,
        done: ckpt.rows_written().saturating_sub(already) as u64,
        wall_ms: started.elapsed().as_millis() as u64,
        rounds,
    });
    if let Err(e) = finished {
        eprintln!("warning: event log: {e}");
    }
    let summary = match outcome {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "{} map point(s) checkpointed; rerun with --resume to continue",
                ckpt.rows_written()
            );
            return ExitCode::FAILURE;
        }
    };
    let escalated = if summary.escalated_probes > 0 {
        format!(", {} escalated", summary.escalated_probes)
    } else {
        String::new()
    };
    println!(
        "{} of {} map point(s) complete in {} ({} probe(s) over {} wave(s) this run{escalated})",
        summary.completed,
        summary.points,
        out_path.display(),
        summary.probes_run,
        summary.waves
    );
    if summary.completed < summary.points {
        println!("rerun with --resume to continue");
    }
    if summary.unclean_probes > 0 {
        eprintln!(
            "warning: {} probe(s) violated a model invariant — the mapped boundary \
             is suspect unless the algorithm violates by design (duty-cycle)",
            summary.unclean_probes
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn shard(args: &[String]) -> ExitCode {
    let opts = match cli::parse_shard(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    let dir = Path::new(&opts.dir);
    match opts.action {
        cli::ShardAction::Plan => {
            let text = match std::fs::read_to_string(&opts.spec_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", opts.spec_path);
                    return ExitCode::from(2);
                }
            };
            let plan = match ShardPlan::build(&text, opts.format, opts.detail, opts.shards.unwrap())
                .and_then(|plan| plan.save(dir).map(|()| plan))
            {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            println!(
                "planned {} unit(s) ({} row(s)) across {} shard(s) in {} (digest {:016x})",
                plan.units.len(),
                plan.total_indices(),
                plan.slices.len(),
                dir.display(),
                plan.digest
            );
            for s in &plan.slices {
                println!("  shard {}: units [{}, {})", s.id, s.lo, s.hi);
            }
            ExitCode::SUCCESS
        }
        cli::ShardAction::Run => {
            let text = match std::fs::read_to_string(&opts.spec_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", opts.spec_path);
                    return ExitCode::from(2);
                }
            };
            let plan = match ShardPlan::load(dir) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            match ShardPlan::digest_for(&text, plan.format, plan.detail) {
                Ok(d) if d == plan.digest => {}
                Ok(d) => {
                    eprintln!(
                        "error: spec digest mismatch between plan and run (plan {:016x}, \
                         {} digests to {d:016x}); refusing to run against a different spec",
                        plan.digest, opts.spec_path
                    );
                    return ExitCode::from(2);
                }
                Err(e) => {
                    eprintln!("error: {}: {e}", opts.spec_path);
                    return ExitCode::from(2);
                }
            }
            let shard_id = opts.shard.unwrap();
            let runner = match ShardRunner::new(dir, plan, shard_id) {
                Ok(r) => r.threads(opts.threads.unwrap_or(1)).progress(opts.progress),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            let summary = match runner.run(&Registry, opts.resume) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "shard {shard_id}: ran {} unit(s), {} row(s){}",
                summary.units_run,
                summary.rows,
                if summary.exhausted { "; plan exhausted" } else { "" }
            );
            if summary.failed > 0 {
                eprintln!("warning: {} scenario(s) failed to run", summary.failed);
                return ExitCode::FAILURE;
            }
            if summary.unclean > 0 {
                eprintln!("warning: {} run(s) violated a model invariant", summary.unclean);
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        cli::ShardAction::Merge => {
            let plan = match ShardPlan::load(dir) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            let out = opts.out.clone().unwrap_or_else(|| {
                dir.join(format!("merged.{}", plan.out_name().rsplit('.').next().unwrap()))
                    .display()
                    .to_string()
            });
            match emac::core::shard::merge(dir, Path::new(&out)) {
                Ok(summary) => {
                    println!(
                        "merged {} row(s) from {} shard(s) into {out}",
                        summary.rows, summary.shards_merged
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        cli::ShardAction::Status => match emac::core::shard::status(dir) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
    }
}

fn run(args: &[String]) -> ExitCode {
    let opts = match cli::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    let alg = match cli::make_algorithm(&opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let spec = opts.to_spec();

    // Seed batch: one lockstep lane per seed, one verdict/digest row per
    // lane. Lane digests are exactly what `--seed <s>` solo runs print —
    // CI diffs the two.
    if let Some(seeds) = &opts.seeds {
        if opts.trace.is_some() {
            eprintln!(
                "error: --trace traces a single execution; it cannot be combined with --seeds"
            );
            return ExitCode::from(2);
        }
        let reports = match emac::core::campaign::execute_batch(&spec, seeds, &Registry) {
            Ok(reports) => reports,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        let mut all_clean = true;
        println!("seed batch: {} lanes | {}", seeds.len(), spec.display_label());
        for (seed, report) in seeds.iter().zip(&reports) {
            all_clean &= report.clean();
            let tripped =
                report.tripped_round.map_or(String::new(), |r| format!(" | tripped round {r}"));
            println!(
                "  seed {seed:>3} | {:<12} | digest {} | delivered {}/{} | max queue {} | invariants: {}{tripped}",
                format!("{:?}", report.stability.verdict),
                emac::core::digest::report_digest_hex(report),
                report.metrics.delivered,
                report.metrics.injected,
                report.max_queue(),
                report.violations,
            );
        }
        return if all_clean { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    // Tracing requires direct simulator access; otherwise use the runner.
    // Both paths hand the algorithm's schedule (when oblivious) to the
    // registry, so schedule-aware adversaries work here too.
    if let Some(capacity) = opts.trace {
        use emac::sim::{SimConfig, Simulator, WakeMode};
        let cap = opts.cap.unwrap_or_else(|| alg.required_cap(opts.n));
        let mut cfg = SimConfig::new(opts.n, cap).adversary_type(opts.rho, opts.beta);
        if let Some(f) = &opts.faults {
            cfg = cfg.faults(f.clone());
        }
        let built = alg.build(opts.n);
        let schedule = match &built.wake {
            WakeMode::Scheduled(s) => Some(s.clone()),
            WakeMode::Adaptive => None,
        };
        let adversary = match Registry::make_adversary(&spec, schedule.as_ref()) {
            Ok(adv) => adv,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        let mut sim = Simulator::new(cfg, built, adversary);
        sim.enable_trace(capacity);
        sim.run(opts.rounds);
        println!("last {capacity} rounds:");
        print!("{}", sim.trace().expect("enabled").render());
        println!(
            "delivered {}/{} | latency max {} | max queue {} | invariants: {}",
            sim.metrics().delivered,
            sim.metrics().injected,
            sim.metrics().delay.max(),
            sim.metrics().max_total_queued,
            sim.violations()
        );
        return if sim.violations().is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let mut runner = Runner::new(opts.n).rate(opts.rho).beta(opts.beta).rounds(opts.rounds);
    if let Some(d) = opts.drain {
        runner = runner.drain(d);
    }
    if let Some(c) = opts.cap {
        runner = runner.cap(c);
    }
    if let Some(q) = opts.probe_cap {
        runner = runner.probe_cap(q);
    }
    if let Some(f) = &opts.faults {
        runner = runner.faults(f.clone());
    }
    let report = match runner.try_run_against(alg.as_ref(), |s| Registry::make_adversary(&spec, s))
    {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!("{report}");
    if let Some(r) = report.tripped_round {
        println!("  probe: queue cap tripped at round {r}");
    }
    let m = &report.metrics;
    if m.jammed_rounds != 0 || m.crashes != 0 || m.deaf_rounds != 0 {
        println!(
            "  faults: {} jammed round(s), {} crash(es), {} deaf round(s)",
            m.jammed_rounds, m.crashes, m.deaf_rounds
        );
    }
    println!("  digest: {}", emac::core::digest::report_digest_hex(&report));
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
