//! `emac` — command-line driver for the simulator.
//!
//! ```text
//! emac run --alg count-hop --n 8 --rho 1/2 --beta 2 --rounds 100000 \
//!          --adversary uniform --seed 7 [--drain 20000] [--trace 40]
//! emac list
//! ```
//!
//! Prints the standard run report; exits non-zero if the run violates any
//! model invariant (useful in CI). All parsing and construction logic lives
//! in [`emac::cli`].

use std::process::ExitCode;

use emac::cli;
use emac::core::prelude::*;
use emac::sim::Rate;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        _ => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage:\n  emac run --alg <name> --n <N> [--k <K>] [--rho P/Q] [--beta B]\n           \
         [--rounds R] [--adversary uniform|single-target|round-robin|bursty|sleeper]\n           \
         [--seed S] [--drain R] [--trace N] [--cap C]\n  emac list"
    );
}

fn list() {
    println!("algorithms (--alg):");
    println!("  orchestra       cap 3, stable at rho = 1 (queues <= 2n^3+beta)");
    println!("  count-hop       cap 2, universal, latency O((n^2+beta)/(1-rho))");
    println!("  adjust-window   cap 2, universal, plain packets");
    println!("  k-cycle         cap k (--k), oblivious, rho < (k-1)/(n-1)");
    println!("  k-clique        cap k, oblivious direct");
    println!("  k-subsets       cap k, oblivious direct, optimal rate k(k-1)/(n(n-1))");
    println!("  k-subsets-rrw   bounded-latency variant");
    println!("  duty-cycle      uncoordinated baseline (loses packets by design)");
}

fn run(args: &[String]) -> ExitCode {
    let opts = match cli::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    let (alg, adversary) = match cli::make_algorithm(&opts).and_then(|a| {
        cli::make_adversary(&opts).map(|adv| (a, adv))
    }) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    // Tracing requires direct simulator access; otherwise use the runner.
    if let Some(capacity) = opts.trace {
        use emac::sim::{SimConfig, Simulator};
        let cap = opts.cap.unwrap_or_else(|| alg.required_cap(opts.n));
        let cfg = SimConfig::new(opts.n, cap).adversary_type(opts.rho, Rate::integer(opts.beta));
        let mut sim = Simulator::new(cfg, alg.build(opts.n), adversary);
        sim.enable_trace(capacity);
        sim.run(opts.rounds);
        println!("last {capacity} rounds:");
        print!("{}", sim.trace().expect("enabled").render());
        println!(
            "delivered {}/{} | latency max {} | max queue {} | invariants: {}",
            sim.metrics().delivered,
            sim.metrics().injected,
            sim.metrics().delay.max(),
            sim.metrics().max_total_queued,
            sim.violations()
        );
        return if sim.violations().is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let mut runner = Runner::new(opts.n).rate(opts.rho).beta(opts.beta).rounds(opts.rounds);
    if let Some(d) = opts.drain {
        runner = runner.drain(d);
    }
    if let Some(c) = opts.cap {
        runner = runner.cap(c);
    }
    let report = runner.run(alg.as_ref(), adversary);
    println!("{report}");
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
