//! `emac` — command-line driver for the simulator.
//!
//! ```text
//! emac run --alg count-hop --n 8 --rho 1/2 --beta 2 --rounds 100000 \
//!          --adversary uniform --seed 7 [--drain 20000] [--trace 40]
//! emac campaign spec.json [--threads N] [--out DIR]
//! emac campaign --example
//! emac list
//! ```
//!
//! `run` prints the standard run report; `campaign` executes a JSON
//! scenario spec (see `emac campaign --example`) in parallel and writes
//! structured JSON/CSV results. Both exit non-zero if any run violates a
//! model invariant (useful in CI). All parsing and construction logic lives
//! in [`emac::cli`] and [`emac::registry`].

use std::path::Path;
use std::process::ExitCode;

use emac::cli;
use emac::core::campaign::{parse_campaign_spec, Campaign};
use emac::core::prelude::*;
use emac::registry::{Registry, ADVERSARIES, ALGORITHMS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("campaign") => campaign(&args[1..]),
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        _ => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage:\n  emac run --alg <name> --n <N> [--k <K>] [--rho P/Q] [--beta B]\n           \
         [--rounds R] [--adversary <name>] [--seed S] [--drain R] [--trace N]\n           \
         [--cap C] [--target S] [--dest S] [--period R] [--horizon R]\n  \
         emac campaign <spec.json> [--threads N] [--out DIR]\n  \
         emac campaign --example   # print a commented example spec\n  \
         emac list"
    );
}

fn list() {
    println!("algorithms (--alg):");
    for (name, what) in ALGORITHMS {
        println!("  {name:<15} {what}");
    }
    println!("adversaries (--adversary):");
    for (name, what) in ADVERSARIES {
        println!("  {name:<15} {what}");
    }
}

const EXAMPLE_SPEC: &str = r#"{
  "scenarios": [
    {"label": "one-off run", "algorithm": "count-hop", "adversary": "uniform",
     "n": 8, "rho": "1/2", "beta": "2", "rounds": 100000, "drain": 20000, "seed": 7}
  ],
  "grids": [
    {"algorithms": ["k-cycle", "k-clique"], "adversaries": ["uniform"],
     "n": [9, 13], "k": [3, 4], "rho": ["1/5", "1/4"], "beta": ["2"],
     "rounds": 100000, "seeds": [1, 2]}
  ]
}"#;

fn campaign(args: &[String]) -> ExitCode {
    if args.first().map(String::as_str) == Some("--example") {
        println!("{EXAMPLE_SPEC}");
        return ExitCode::SUCCESS;
    }
    let mut spec_path: Option<&str> = None;
    let mut threads: Option<usize> = None;
    let mut out_dir = String::from("results/campaign");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                threads = match it.next().map(|v| v.parse()) {
                    Some(Ok(t)) => Some(t),
                    _ => {
                        eprintln!("error: --threads needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--out" => {
                out_dir = match it.next() {
                    Some(v) => v.clone(),
                    None => {
                        eprintln!("error: --out needs a directory");
                        return ExitCode::from(2);
                    }
                }
            }
            path if spec_path.is_none() && !path.starts_with("--") => spec_path = Some(path),
            other => {
                eprintln!("error: unexpected argument {other}");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    let Some(spec_path) = spec_path else {
        eprintln!("error: campaign needs a spec file (try `emac campaign --example`)");
        usage();
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {spec_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let specs = match parse_campaign_spec(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {spec_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut executor = Campaign::new();
    if let Some(t) = threads {
        executor = executor.threads(t);
    }
    eprintln!("running {} scenarios...", specs.len());
    let result = executor.run(&specs, &Registry);

    for run in &result.runs {
        match &run.outcome {
            Ok(report) => println!(
                "{:<64} latency {:>8} queue {:>8} {:<11} {}",
                run.spec.display_label(),
                report.latency(),
                report.max_queue(),
                format!("{:?}", report.stability.verdict),
                if report.clean() { "clean" } else { "VIOLATIONS" },
            ),
            Err(e) => println!("{:<64} ERROR {e}", run.spec.display_label()),
        }
    }
    println!("{}", result.summary());

    if let Err(e) = result.write_files(Path::new(&out_dir)) {
        eprintln!("error: writing results to {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_dir}/campaign.json and {out_dir}/campaign.csv");

    if result.all_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run(args: &[String]) -> ExitCode {
    let opts = match cli::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    let alg = match cli::make_algorithm(&opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let spec = opts.to_spec();

    // Tracing requires direct simulator access; otherwise use the runner.
    // Both paths hand the algorithm's schedule (when oblivious) to the
    // registry, so schedule-aware adversaries work here too.
    if let Some(capacity) = opts.trace {
        use emac::sim::{SimConfig, Simulator, WakeMode};
        let cap = opts.cap.unwrap_or_else(|| alg.required_cap(opts.n));
        let cfg = SimConfig::new(opts.n, cap).adversary_type(opts.rho, opts.beta);
        let built = alg.build(opts.n);
        let schedule = match &built.wake {
            WakeMode::Scheduled(s) => Some(s.clone()),
            WakeMode::Adaptive => None,
        };
        let adversary = match Registry::make_adversary(&spec, schedule.as_ref()) {
            Ok(adv) => adv,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        let mut sim = Simulator::new(cfg, built, adversary);
        sim.enable_trace(capacity);
        sim.run(opts.rounds);
        println!("last {capacity} rounds:");
        print!("{}", sim.trace().expect("enabled").render());
        println!(
            "delivered {}/{} | latency max {} | max queue {} | invariants: {}",
            sim.metrics().delivered,
            sim.metrics().injected,
            sim.metrics().delay.max(),
            sim.metrics().max_total_queued,
            sim.violations()
        );
        return if sim.violations().is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let mut runner = Runner::new(opts.n).rate(opts.rho).beta(opts.beta).rounds(opts.rounds);
    if let Some(d) = opts.drain {
        runner = runner.drain(d);
    }
    if let Some(c) = opts.cap {
        runner = runner.cap(c);
    }
    let report = match runner.try_run_against(alg.as_ref(), |s| Registry::make_adversary(&spec, s))
    {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!("{report}");
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
