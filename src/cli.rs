//! Argument parsing and object construction for the `emac` CLI binary.
//!
//! Kept in the library so the mapping from names to algorithms/adversaries
//! is unit-testable; the binary in `src/bin/emac.rs` only does I/O.

use emac_adversary::{Bursty, RoundRobinLoad, SingleTarget, SleeperTargeting, UniformRandom};
use emac_core::prelude::*;
use emac_sim::{Adversary, Rate};

/// Parsed command-line options for `emac run`.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Algorithm name (see `emac list`).
    pub alg: String,
    /// System size.
    pub n: usize,
    /// Energy cap parameter for the k-algorithms.
    pub k: usize,
    /// Injection rate ρ.
    pub rho: Rate,
    /// Burstiness β.
    pub beta: u64,
    /// Rounds to simulate.
    pub rounds: u64,
    /// Adversary name.
    pub adversary: String,
    /// Adversary seed.
    pub seed: u64,
    /// Optional drain budget after the run.
    pub drain: Option<u64>,
    /// Optional trace window size.
    pub trace: Option<usize>,
    /// Optional energy-cap override.
    pub cap: Option<usize>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            alg: String::new(),
            n: 8,
            k: 3,
            rho: Rate::new(1, 2),
            beta: 1,
            rounds: 100_000,
            adversary: "uniform".into(),
            seed: 42,
            drain: None,
            trace: None,
            cap: None,
        }
    }
}

/// Parse `emac run` flags.
pub fn parse(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            || it.next().map(String::as_str).ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--alg" => o.alg = value()?.to_string(),
            "--n" => o.n = value()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--k" => o.k = value()?.parse().map_err(|e| format!("--k: {e}"))?,
            "--rho" => o.rho = parse_rate(value()?)?,
            "--beta" => o.beta = value()?.parse().map_err(|e| format!("--beta: {e}"))?,
            "--rounds" => o.rounds = value()?.parse().map_err(|e| format!("--rounds: {e}"))?,
            "--adversary" => o.adversary = value()?.to_string(),
            "--seed" => o.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--drain" => o.drain = Some(value()?.parse().map_err(|e| format!("--drain: {e}"))?),
            "--trace" => o.trace = Some(value()?.parse().map_err(|e| format!("--trace: {e}"))?),
            "--cap" => o.cap = Some(value()?.parse().map_err(|e| format!("--cap: {e}"))?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if o.alg.is_empty() {
        return Err("--alg is required (see `emac list`)".into());
    }
    if o.n < 2 {
        return Err("--n must be at least 2".into());
    }
    Ok(o)
}

/// Parse a rate given as `P/Q`, `1`, or a decimal in `[0, 1]`.
pub fn parse_rate(s: &str) -> Result<Rate, String> {
    if let Some((p, q)) = s.split_once('/') {
        let p: u64 = p.parse().map_err(|e| format!("rate: {e}"))?;
        let q: u64 = q.parse().map_err(|e| format!("rate: {e}"))?;
        if q == 0 {
            return Err("rate denominator is zero".into());
        }
        if p > q {
            return Err("rate must be within [0, 1]".into());
        }
        Ok(Rate::new(p, q))
    } else if s == "1" {
        Ok(Rate::one())
    } else {
        let v: f64 = s.parse().map_err(|e| format!("rate: {e}"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err("rate must be within [0, 1]".into());
        }
        Ok(Rate::new((v * 10_000.0).round() as u64, 10_000))
    }
}

/// Construct the algorithm named by the options.
pub fn make_algorithm(o: &Opts) -> Result<Box<dyn Algorithm>, String> {
    Ok(match o.alg.as_str() {
        "orchestra" => Box::new(Orchestra::new()),
        "count-hop" => Box::new(CountHop::new()),
        "adjust-window" => Box::new(AdjustWindow::new()),
        "k-cycle" => Box::new(KCycle::new(o.k)),
        "k-clique" => Box::new(KClique::new(o.k)),
        "k-subsets" => Box::new(KSubsets::new(o.k)),
        "k-subsets-rrw" => Box::new(KSubsets::with_rrw(o.k)),
        "duty-cycle" => Box::new(DutyCycle::seeded(o.k, o.seed)),
        other => return Err(format!("unknown algorithm {other} (see `emac list`)")),
    })
}

/// Construct the adversary named by the options.
pub fn make_adversary(o: &Opts) -> Result<Box<dyn Adversary>, String> {
    Ok(match o.adversary.as_str() {
        "uniform" => Box::new(UniformRandom::new(o.seed)),
        "single-target" => Box::new(SingleTarget::new(0, o.n - 1)),
        "round-robin" => Box::new(RoundRobinLoad::new()),
        "bursty" => Box::new(Bursty::new(0, 64)),
        "sleeper" => Box::new(SleeperTargeting::new()),
        other => return Err(format!("unknown adversary {other}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let o = parse(&argv(
            "--alg k-cycle --n 9 --k 3 --rho 1/5 --beta 4 --rounds 5000 \
             --adversary round-robin --seed 9 --drain 1000 --cap 4",
        ))
        .unwrap();
        assert_eq!(o.alg, "k-cycle");
        assert_eq!((o.n, o.k, o.beta, o.rounds, o.seed), (9, 3, 4, 5000, 9));
        assert_eq!(o.rho, Rate::new(1, 5));
        assert_eq!(o.drain, Some(1000));
        assert_eq!(o.cap, Some(4));
        assert!(make_algorithm(&o).is_ok());
        assert!(make_adversary(&o).is_ok());
    }

    #[test]
    fn rate_forms() {
        assert_eq!(parse_rate("1").unwrap(), Rate::one());
        assert_eq!(parse_rate("3/4").unwrap(), Rate::new(3, 4));
        assert_eq!(parse_rate("0.25").unwrap(), Rate::new(1, 4));
        assert!(parse_rate("5/4").is_err());
        assert!(parse_rate("2.0").is_err());
        assert!(parse_rate("x").is_err());
        assert!(parse_rate("1/0").is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("--n 4")).is_err(), "missing --alg");
        assert!(parse(&argv("--alg count-hop --n 1")).is_err(), "n too small");
        assert!(parse(&argv("--alg count-hop --bogus 1")).is_err(), "unknown flag");
        assert!(parse(&argv("--alg count-hop --n")).is_err(), "missing value");
        let o = parse(&argv("--alg nope")).unwrap();
        assert!(make_algorithm(&o).is_err());
        let o = parse(&argv("--alg count-hop --adversary nope")).unwrap();
        assert!(make_adversary(&o).is_err());
    }

    #[test]
    fn every_listed_algorithm_constructs() {
        for alg in [
            "orchestra",
            "count-hop",
            "adjust-window",
            "k-cycle",
            "k-clique",
            "k-subsets",
            "k-subsets-rrw",
            "duty-cycle",
        ] {
            let o = parse(&[String::from("--alg"), alg.into()]).unwrap();
            let built = make_algorithm(&o).unwrap();
            assert!(!built.name().is_empty());
        }
    }
}
