//! Argument parsing and object construction for the `emac` CLI binary.
//!
//! Kept in the library so the mapping from flags to scenarios is
//! unit-testable; the binary in `src/bin/emac.rs` only does I/O. Name
//! resolution itself lives in [`crate::registry`] — the same registry the
//! campaign executor and the bench binaries use.

use emac_core::campaign::json::Json;
use emac_core::campaign::{fault_spec_from_json, MetricsDetail, ScenarioSpec};
use emac_core::prelude::*;
use emac_sim::{Adversary, FaultSpec, Rate};

use crate::registry::Registry;

/// Streaming output format for `emac campaign --format`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CampaignFormat {
    /// One flat CSV row per scenario (`campaign.csv`).
    Csv,
    /// One JSON object per line (`campaign.jsonl`).
    JsonLines,
}

impl CampaignFormat {
    /// The output file name inside `--out`.
    pub fn file_name(self) -> &'static str {
        match self {
            CampaignFormat::Csv => "campaign.csv",
            CampaignFormat::JsonLines => "campaign.jsonl",
        }
    }
}

/// Parsed command-line options for `emac campaign`.
#[derive(Clone, Debug)]
pub struct CampaignOpts {
    /// Print the example spec and exit (`--example`).
    pub example: bool,
    /// Path to the JSON spec file.
    pub spec_path: String,
    /// Worker count override.
    pub threads: Option<usize>,
    /// Output directory (default `results/campaign`).
    pub out_dir: String,
    /// Streaming format; `None` means the buffered legacy export
    /// (`campaign.json` + `campaign.csv`).
    pub format: Option<CampaignFormat>,
    /// Per-scenario metrics detail.
    pub detail: MetricsDetail,
    /// Resume from `campaign.ckpt` instead of starting fresh.
    pub resume: bool,
    /// Run at most this many (remaining) scenarios, then stop with the
    /// checkpoint intact — bounded work chunks for long campaigns.
    pub limit: Option<usize>,
    /// Render a live progress line on stderr (`--progress`).
    pub progress: bool,
    /// Append structured observability events to this JSONL path
    /// (`--events`); `None` leaves the event log disarmed.
    pub events: Option<String>,
}

/// Parse `emac campaign` flags. Streaming-only flags (`--resume`,
/// `--limit`) require `--format`, because only streaming outputs are
/// appendable.
pub fn parse_campaign(args: &[String]) -> Result<CampaignOpts, String> {
    let mut o = CampaignOpts {
        example: false,
        spec_path: String::new(),
        threads: None,
        out_dir: "results/campaign".into(),
        format: None,
        detail: MetricsDetail::Full,
        resume: false,
        limit: None,
        progress: false,
        events: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            || it.next().map(String::as_str).ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--example" => o.example = true,
            "--threads" => {
                o.threads = Some(value()?.parse().map_err(|e| format!("--threads: {e}"))?)
            }
            "--out" => o.out_dir = value()?.to_string(),
            "--format" => {
                o.format = Some(match value()? {
                    "csv" => CampaignFormat::Csv,
                    "jsonl" => CampaignFormat::JsonLines,
                    other => return Err(format!("--format must be csv or jsonl, got {other:?}")),
                })
            }
            "--detail" => {
                o.detail = match value()? {
                    "full" => MetricsDetail::Full,
                    "slim" => MetricsDetail::Slim,
                    other => return Err(format!("--detail must be full or slim, got {other:?}")),
                }
            }
            "--resume" => o.resume = true,
            "--limit" => o.limit = Some(value()?.parse().map_err(|e| format!("--limit: {e}"))?),
            "--progress" => o.progress = true,
            "--events" => o.events = Some(value()?.to_string()),
            path if o.spec_path.is_empty() && !path.starts_with("--") => {
                o.spec_path = path.to_string()
            }
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    if o.example {
        return Ok(o);
    }
    if o.spec_path.is_empty() {
        return Err("campaign needs a spec file (try `emac campaign --example`)".into());
    }
    if o.format.is_none() && (o.resume || o.limit.is_some()) {
        return Err("--resume and --limit need a streaming --format (csv or jsonl)".into());
    }
    if o.limit == Some(0) {
        return Err("--limit must be positive".into());
    }
    if o.threads == Some(0) {
        return Err("--threads must be positive".into());
    }
    Ok(o)
}

/// Streaming output format for `emac frontier --format`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontierFormat {
    /// One CSV row per map point (`frontier.csv`).
    Csv,
    /// One JSON object per line (`frontier.jsonl`).
    JsonLines,
}

impl FrontierFormat {
    /// The output file name inside `--out`.
    pub fn file_name(self) -> &'static str {
        match self {
            FrontierFormat::Csv => "frontier.csv",
            FrontierFormat::JsonLines => "frontier.jsonl",
        }
    }
}

/// Parsed command-line options for `emac frontier`.
#[derive(Clone, Debug)]
pub struct FrontierOpts {
    /// Print the example template and exit (`--example`).
    pub example: bool,
    /// Path to the JSON frontier template.
    pub spec_path: String,
    /// Search-axis override (`--axis rho|beta|k|ell`); `None` keeps the
    /// template's axis.
    pub axis: Option<String>,
    /// Tolerance override (`--tol`); `None` keeps the template's.
    pub tol: Option<f64>,
    /// Seed-escalation override (`--escalate MAX[:STEP]`) as
    /// `(max_seeds, step)`; `None` keeps the template's rule.
    pub escalate: Option<(usize, usize)>,
    /// Worker count override.
    pub threads: Option<usize>,
    /// Output directory (default `results/frontier`).
    pub out_dir: String,
    /// Output format (default CSV).
    pub format: FrontierFormat,
    /// Resume from `frontier.ckpt` instead of starting fresh.
    pub resume: bool,
    /// Run at most this many refinement waves, then stop with the
    /// checkpoint intact — bounded work chunks for wide maps.
    pub max_waves: Option<usize>,
    /// Render a live progress line on stderr (`--progress`).
    pub progress: bool,
    /// Append structured observability events to this JSONL path
    /// (`--events`); `None` leaves the event log disarmed.
    pub events: Option<String>,
}

/// Parse `emac frontier` flags.
pub fn parse_frontier(args: &[String]) -> Result<FrontierOpts, String> {
    let mut o = FrontierOpts {
        example: false,
        spec_path: String::new(),
        axis: None,
        tol: None,
        escalate: None,
        threads: None,
        out_dir: "results/frontier".into(),
        format: FrontierFormat::Csv,
        resume: false,
        max_waves: None,
        progress: false,
        events: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            || it.next().map(String::as_str).ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--example" => o.example = true,
            "--axis" => o.axis = Some(value()?.to_string()),
            "--tol" => o.tol = Some(value()?.parse().map_err(|e| format!("--tol: {e}"))?),
            "--escalate" => o.escalate = Some(parse_escalate(value()?)?),
            "--threads" => {
                o.threads = Some(value()?.parse().map_err(|e| format!("--threads: {e}"))?)
            }
            "--out" => o.out_dir = value()?.to_string(),
            "--format" => {
                o.format = match value()? {
                    "csv" => FrontierFormat::Csv,
                    "jsonl" => FrontierFormat::JsonLines,
                    other => return Err(format!("--format must be csv or jsonl, got {other:?}")),
                }
            }
            "--resume" => o.resume = true,
            "--max-waves" => {
                o.max_waves = Some(value()?.parse().map_err(|e| format!("--max-waves: {e}"))?)
            }
            "--progress" => o.progress = true,
            "--events" => o.events = Some(value()?.to_string()),
            path if o.spec_path.is_empty() && !path.starts_with("--") => {
                o.spec_path = path.to_string()
            }
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    if o.example {
        return Ok(o);
    }
    if o.spec_path.is_empty() {
        return Err("frontier needs a template file (try `emac frontier --example`)".into());
    }
    if o.max_waves == Some(0) {
        return Err("--max-waves must be positive".into());
    }
    if o.threads == Some(0) {
        return Err("--threads must be positive".into());
    }
    Ok(o)
}

/// Which `emac shard` sub-action was requested.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardAction {
    /// `emac shard plan SPEC --dir DIR --shards D`: write the plan and
    /// claim table.
    Plan,
    /// `emac shard run SPEC --dir DIR --shard S`: execute one shard.
    Run,
    /// `emac shard merge --dir DIR [--out FILE]`: stitch shard outputs.
    Merge,
    /// `emac shard status --dir DIR`: progress report.
    Status,
}

/// Parsed command-line options for `emac shard`.
#[derive(Clone, Debug)]
pub struct ShardOpts {
    /// The sub-action (first positional argument).
    pub action: ShardAction,
    /// Spec path (`plan` and `run` — `run` re-reads it so its digest can
    /// be checked against the plan's).
    pub spec_path: String,
    /// Shared plan directory (`--dir`, required everywhere).
    pub dir: String,
    /// Shard count (`--shards`, `plan` only).
    pub shards: Option<usize>,
    /// Shard id (`--shard`, `run` only).
    pub shard: Option<usize>,
    /// Output format (`--format`, `plan` only; baked into the plan).
    pub format: emac_core::shard::ShardFormat,
    /// Metric detail (`--detail`, `plan` only; baked into the plan).
    pub detail: MetricsDetail,
    /// Resume this shard's checkpoint (`--resume`, `run` only).
    pub resume: bool,
    /// Worker-thread override (`--threads`, `run` only).
    pub threads: Option<usize>,
    /// Merged-output path override (`--out`, `merge` only).
    pub out: Option<String>,
    /// Render a live progress line on stderr (`--progress`, `run` only).
    /// The per-shard event log under `shard-S/events.jsonl` is always on.
    pub progress: bool,
}

/// Parse `emac shard` flags. The first positional names the action;
/// which flags are legal (and required) depends on it.
pub fn parse_shard(args: &[String]) -> Result<ShardOpts, String> {
    let mut it = args.iter();
    let action = match it.next().map(String::as_str) {
        Some("plan") => ShardAction::Plan,
        Some("run") => ShardAction::Run,
        Some("merge") => ShardAction::Merge,
        Some("status") => ShardAction::Status,
        Some(other) => {
            return Err(format!("unknown shard action {other:?} (plan, run, merge, status)"))
        }
        None => return Err("shard needs an action (plan, run, merge, status)".into()),
    };
    let mut o = ShardOpts {
        action,
        spec_path: String::new(),
        dir: String::new(),
        shards: None,
        shard: None,
        format: emac_core::shard::ShardFormat::Csv,
        detail: MetricsDetail::Full,
        resume: false,
        threads: None,
        out: None,
        progress: false,
    };
    let takes_spec = matches!(action, ShardAction::Plan | ShardAction::Run);
    while let Some(arg) = it.next() {
        let mut value =
            || it.next().map(String::as_str).ok_or_else(|| format!("{arg} needs a value"));
        let wrong = |flag: &str, action: &str| format!("{flag} is only for `emac shard {action}`");
        match arg.as_str() {
            "--dir" => o.dir = value()?.to_string(),
            "--shards" if action == ShardAction::Plan => {
                o.shards = Some(value()?.parse().map_err(|e| format!("--shards: {e}"))?)
            }
            "--shards" => return Err(wrong("--shards", "plan")),
            "--shard" if action == ShardAction::Run => {
                o.shard = Some(value()?.parse().map_err(|e| format!("--shard: {e}"))?)
            }
            "--shard" => return Err(wrong("--shard", "run")),
            "--format" if action == ShardAction::Plan => {
                o.format = match value()? {
                    "csv" => emac_core::shard::ShardFormat::Csv,
                    "jsonl" => emac_core::shard::ShardFormat::JsonLines,
                    other => return Err(format!("--format must be csv or jsonl, got {other:?}")),
                }
            }
            "--format" => return Err(wrong("--format", "plan")),
            "--detail" if action == ShardAction::Plan => {
                o.detail = match value()? {
                    "full" => MetricsDetail::Full,
                    "slim" => MetricsDetail::Slim,
                    other => return Err(format!("--detail must be full or slim, got {other:?}")),
                }
            }
            "--detail" => return Err(wrong("--detail", "plan")),
            "--resume" if action == ShardAction::Run => o.resume = true,
            "--resume" => return Err(wrong("--resume", "run")),
            "--threads" if action == ShardAction::Run => {
                o.threads = Some(value()?.parse().map_err(|e| format!("--threads: {e}"))?)
            }
            "--threads" => return Err(wrong("--threads", "run")),
            "--out" if action == ShardAction::Merge => o.out = Some(value()?.to_string()),
            "--out" => return Err(wrong("--out", "merge")),
            "--progress" if action == ShardAction::Run => o.progress = true,
            "--progress" => return Err(wrong("--progress", "run")),
            path if takes_spec && o.spec_path.is_empty() && !path.starts_with("--") => {
                o.spec_path = path.to_string()
            }
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    if takes_spec && o.spec_path.is_empty() {
        return Err("shard plan/run need a spec file".into());
    }
    if o.dir.is_empty() {
        return Err("--dir is required".into());
    }
    if action == ShardAction::Plan && o.shards.is_none() {
        return Err("shard plan needs --shards".into());
    }
    if o.shards == Some(0) {
        return Err("--shards must be positive".into());
    }
    if action == ShardAction::Run && o.shard.is_none() {
        return Err("shard run needs --shard".into());
    }
    if o.threads == Some(0) {
        return Err("--threads must be positive".into());
    }
    Ok(o)
}

/// Parsed command-line options for `emac obs`.
#[derive(Clone, Debug)]
pub struct ObsOpts {
    /// Event-log paths to aggregate (`emac obs report FILE...`). One
    /// report covers all of them, so a fleet's shard logs can be summed.
    pub files: Vec<String>,
}

/// Parse `emac obs` flags. The only action today is `report`, which
/// aggregates one or more `events.jsonl` files into rate and latency
/// summaries.
pub fn parse_obs(args: &[String]) -> Result<ObsOpts, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("report") => {}
        Some(other) => return Err(format!("unknown obs action {other:?} (report)")),
        None => return Err("obs needs an action (report)".into()),
    }
    let files: Vec<String> = it.map(String::clone).collect();
    if files.is_empty() {
        return Err("obs report needs at least one events.jsonl path".into());
    }
    if let Some(flag) = files.iter().find(|f| f.starts_with("--")) {
        return Err(format!("unexpected argument {flag}"));
    }
    Ok(ObsOpts { files })
}

/// Parsed command-line options for `emac run`.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Algorithm name (see `emac list`).
    pub alg: String,
    /// System size.
    pub n: usize,
    /// Energy cap parameter for the k-algorithms.
    pub k: usize,
    /// Injection rate ρ.
    pub rho: Rate,
    /// Burstiness β (general rational; `--beta 3/2` is legal).
    pub beta: Rate,
    /// Rounds to simulate.
    pub rounds: u64,
    /// Adversary name.
    pub adversary: String,
    /// Adversary seed.
    pub seed: u64,
    /// Seed batch (`--seeds`): run one lockstep batch lane per seed and
    /// print per-lane verdict/digest rows instead of one full report.
    pub seeds: Option<Vec<u64>>,
    /// Optional drain budget after the run.
    pub drain: Option<u64>,
    /// Optional trace window size.
    pub trace: Option<usize>,
    /// Optional energy-cap override.
    pub cap: Option<usize>,
    /// Injection station for targeted adversaries.
    pub target: Option<usize>,
    /// Destination station for targeted adversaries.
    pub dest: Option<usize>,
    /// Burst period for periodic adversaries.
    pub period: Option<u64>,
    /// Schedule-analysis horizon for the attack adversaries.
    pub horizon: Option<u64>,
    /// Divergence probe: stop early once the total queue reaches this cap
    /// and report the tripping round.
    pub probe_cap: Option<u64>,
    /// Fault injection (`--jam R` shorthand or a full `--faults` JSON object).
    pub faults: Option<FaultSpec>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            alg: String::new(),
            n: 8,
            k: 3,
            rho: Rate::new(1, 2),
            beta: Rate::integer(1),
            rounds: 100_000,
            adversary: "uniform".into(),
            seed: 42,
            seeds: None,
            drain: None,
            trace: None,
            cap: None,
            target: None,
            dest: None,
            period: None,
            horizon: None,
            probe_cap: None,
            faults: None,
        }
    }
}

impl Opts {
    /// The scenario these options describe.
    pub fn to_spec(&self) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(self.alg.clone(), self.adversary.clone());
        spec.n = self.n;
        spec.k = self.k;
        spec.rho = self.rho;
        spec.beta = self.beta;
        spec.rounds = self.rounds;
        spec.drain = self.drain;
        spec.cap = self.cap;
        spec.seed = self.seed;
        spec.target = self.target;
        spec.dest = self.dest;
        spec.period = self.period;
        spec.horizon = self.horizon;
        spec.probe_cap = self.probe_cap;
        spec.faults = self.faults.clone();
        spec
    }
}

/// Parse `emac run` flags.
pub fn parse(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut jam: Option<Rate> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            || it.next().map(String::as_str).ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--alg" => o.alg = value()?.to_string(),
            "--n" => o.n = value()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--k" => o.k = value()?.parse().map_err(|e| format!("--k: {e}"))?,
            "--rho" => o.rho = parse_rate(value()?)?,
            "--beta" => o.beta = parse_beta(value()?)?,
            "--rounds" => o.rounds = value()?.parse().map_err(|e| format!("--rounds: {e}"))?,
            "--adversary" => o.adversary = value()?.to_string(),
            "--seed" => o.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--seeds" => o.seeds = Some(parse_seeds(value()?)?),
            "--drain" => o.drain = Some(value()?.parse().map_err(|e| format!("--drain: {e}"))?),
            "--trace" => o.trace = Some(value()?.parse().map_err(|e| format!("--trace: {e}"))?),
            "--cap" => o.cap = Some(value()?.parse().map_err(|e| format!("--cap: {e}"))?),
            "--target" => o.target = Some(value()?.parse().map_err(|e| format!("--target: {e}"))?),
            "--dest" => o.dest = Some(value()?.parse().map_err(|e| format!("--dest: {e}"))?),
            "--period" => o.period = Some(value()?.parse().map_err(|e| format!("--period: {e}"))?),
            "--horizon" => {
                o.horizon = Some(value()?.parse().map_err(|e| format!("--horizon: {e}"))?)
            }
            "--probe-cap" => {
                o.probe_cap = Some(value()?.parse().map_err(|e| format!("--probe-cap: {e}"))?)
            }
            "--jam" => jam = Some(parse_rate(value()?).map_err(|e| format!("--jam: {e}"))?),
            "--faults" => o.faults = Some(parse_faults(value()?)?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if o.alg.is_empty() {
        return Err("--alg is required (see `emac list`)".into());
    }
    if o.n < 2 {
        return Err("--n must be at least 2".into());
    }
    if o.probe_cap == Some(0) {
        return Err("--probe-cap must be positive".into());
    }
    match (jam, &mut o.faults) {
        (Some(_), Some(_)) => {
            return Err(
                "--jam conflicts with --faults (set \"jam\" inside the --faults object)".into()
            )
        }
        (Some(rate), none) => *none = Some(FaultSpec { jam: rate, ..Default::default() }),
        (None, _) => {}
    }
    Ok(o)
}

/// Parse `--faults`: a JSON object with the same keys as the campaign
/// spec's `"faults"` entry, e.g.
/// `--faults '{"jam": "1/10", "crash": "1/500", "crash_len": 32, "seed": 7}'`.
pub fn parse_faults(s: &str) -> Result<FaultSpec, String> {
    let json = Json::parse(s).map_err(|e| format!("--faults: {e}"))?;
    fault_spec_from_json(&json).map_err(|e| format!("--faults: {e}"))
}

/// Parse `--seeds`: either an explicit comma-separated list (`--seeds
/// 3,17,17` — duplicates are legal, lanes are independent) or a count
/// (`--seeds 8` means seeds `0..8`).
pub fn parse_seeds(s: &str) -> Result<Vec<u64>, String> {
    if s.contains(',') {
        return s
            .split(',')
            .map(|part| part.trim().parse().map_err(|e| format!("--seeds {part:?}: {e}")))
            .collect();
    }
    let count: u64 = s.parse().map_err(|e| format!("--seeds: {e}"))?;
    if count == 0 {
        return Err("--seeds needs at least one seed".into());
    }
    Ok((0..count).collect())
}

/// Parse `--escalate MAX[:STEP]` into `(max_seeds, step)`; the step
/// defaults to 1. Both values must be positive; validation against the
/// template's seed count (MAX below the base ensemble) happens in
/// [`FrontierSpec::validate`](emac_core::frontier::FrontierSpec::validate).
pub fn parse_escalate(s: &str) -> Result<(usize, usize), String> {
    let (max, step) = match s.split_once(':') {
        Some((max, step)) => {
            (max, step.trim().parse().map_err(|e| format!("--escalate step {step:?}: {e}"))?)
        }
        None => (s, 1),
    };
    let max: usize = max.trim().parse().map_err(|e| format!("--escalate {max:?}: {e}"))?;
    if max == 0 {
        return Err("--escalate max seed count must be positive".into());
    }
    if step == 0 {
        return Err("--escalate step must be positive".into());
    }
    Ok((max, step))
}

/// Parse a rate given as `P/Q`, `1`, or a decimal in `[0, 1]`.
pub fn parse_rate(s: &str) -> Result<Rate, String> {
    let rate: Rate = s.parse()?;
    if Rate::one().lt(&rate) {
        return Err("rate must be within [0, 1]".into());
    }
    Ok(rate)
}

/// Parse a burstiness coefficient: like a rate, but any non-negative
/// rational is legal (β regularly exceeds 1).
pub fn parse_beta(s: &str) -> Result<Rate, String> {
    s.parse()
}

/// Construct the algorithm named by the options (via [`Registry`]).
pub fn make_algorithm(o: &Opts) -> Result<Box<dyn Algorithm>, String> {
    Registry::make_algorithm(&o.to_spec())
}

/// Construct the adversary named by the options without a schedule (via
/// [`Registry`]). The binary's `run` path instead wires the algorithm's
/// schedule through [`Registry::make_adversary`], so schedule-aware
/// adversaries work there; this schedule-less form rejects them and exists
/// for validation and tests.
pub fn make_adversary(o: &Opts) -> Result<Box<dyn Adversary>, String> {
    Registry::make_adversary(&o.to_spec(), None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let o = parse(&argv(
            "--alg k-cycle --n 9 --k 3 --rho 1/5 --beta 4 --rounds 5000 \
             --adversary round-robin --seed 9 --drain 1000 --cap 4",
        ))
        .unwrap();
        assert_eq!(o.alg, "k-cycle");
        assert_eq!((o.n, o.k, o.rounds, o.seed), (9, 3, 5000, 9));
        assert_eq!(o.rho, Rate::new(1, 5));
        assert_eq!(o.beta, Rate::integer(4));
        assert_eq!(o.drain, Some(1000));
        assert_eq!(o.cap, Some(4));
        assert!(make_algorithm(&o).is_ok());
        assert!(make_adversary(&o).is_ok());
    }

    #[test]
    fn opts_convert_to_scenario_spec() {
        let o = parse(&argv(
            "--alg k-clique --n 8 --k 4 --rho 1/10 --beta 3/2 --rounds 777 \
             --adversary bursty --target 2 --period 32 --seed 5",
        ))
        .unwrap();
        let spec = o.to_spec();
        assert_eq!(spec.algorithm, "k-clique");
        assert_eq!(spec.adversary, "bursty");
        assert_eq!((spec.n, spec.k, spec.rounds, spec.seed), (8, 4, 777, 5));
        assert_eq!(spec.beta, Rate::new(3, 2));
        assert_eq!(spec.target, Some(2));
        assert_eq!(spec.period, Some(32));
    }

    #[test]
    fn seeds_forms() {
        let o = parse(&argv("--alg k-cycle --seeds 0,3,17")).unwrap();
        assert_eq!(o.seeds.as_deref(), Some(&[0, 3, 17][..]));
        let o = parse(&argv("--alg k-cycle --seeds 4")).unwrap();
        assert_eq!(o.seeds.as_deref(), Some(&[0, 1, 2, 3][..]));
        assert_eq!(parse(&argv("--alg k-cycle")).unwrap().seeds, None);
        assert!(parse(&argv("--alg k-cycle --seeds 0")).is_err(), "empty range");
        assert!(parse(&argv("--alg k-cycle --seeds 1,x")).is_err(), "bad list entry");
        assert!(parse(&argv("--alg k-cycle --seeds")).is_err(), "missing value");
    }

    #[test]
    fn rate_forms() {
        assert_eq!(parse_rate("1").unwrap(), Rate::one());
        assert_eq!(parse_rate("3/4").unwrap(), Rate::new(3, 4));
        assert_eq!(parse_rate("0.25").unwrap(), Rate::new(1, 4));
        assert!(parse_rate("5/4").is_err());
        assert!(parse_rate("2.0").is_err());
        assert!(parse_rate("x").is_err());
        assert!(parse_rate("1/0").is_err());
        // beta may exceed 1
        assert_eq!(parse_beta("3/2").unwrap(), Rate::new(3, 2));
        assert_eq!(parse_beta("4").unwrap(), Rate::integer(4));
        assert!(parse_beta("x").is_err());
    }

    #[test]
    fn parses_campaign_flags() {
        let o = parse_campaign(&argv(
            "spec.json --threads 4 --out results/x --format jsonl --detail slim --resume --limit 20",
        ))
        .unwrap();
        assert_eq!(o.spec_path, "spec.json");
        assert_eq!(o.threads, Some(4));
        assert_eq!(o.out_dir, "results/x");
        assert_eq!(o.format, Some(CampaignFormat::JsonLines));
        assert_eq!(o.detail, MetricsDetail::Slim);
        assert!(o.resume);
        assert_eq!(o.limit, Some(20));
        assert_eq!(CampaignFormat::Csv.file_name(), "campaign.csv");
        assert_eq!(CampaignFormat::JsonLines.file_name(), "campaign.jsonl");

        let o = parse_campaign(&argv("spec.json")).unwrap();
        assert_eq!(o.format, None);
        assert_eq!(o.detail, MetricsDetail::Full);
        assert!(!o.resume && o.limit.is_none());
        assert!(!o.progress && o.events.is_none(), "observability defaults off");
        assert!(parse_campaign(&argv("--example")).unwrap().example);

        let o = parse_campaign(&argv("spec.json --progress --events ev.jsonl")).unwrap();
        assert!(o.progress);
        assert_eq!(o.events.as_deref(), Some("ev.jsonl"));
        assert!(parse_campaign(&argv("spec.json --events")).is_err(), "missing value");
    }

    #[test]
    fn campaign_flag_validation() {
        assert!(parse_campaign(&argv("")).unwrap_err().contains("spec file"));
        assert!(parse_campaign(&argv("spec.json --resume")).unwrap_err().contains("--format"));
        assert!(parse_campaign(&argv("spec.json --limit 5")).unwrap_err().contains("--format"));
        assert!(parse_campaign(&argv("spec.json --format xml")).unwrap_err().contains("csv"));
        assert!(parse_campaign(&argv("spec.json --detail tiny")).unwrap_err().contains("slim"));
        assert!(parse_campaign(&argv("spec.json --format csv --limit 0"))
            .unwrap_err()
            .contains("positive"));
        assert!(parse_campaign(&argv("spec.json --threads 0")).unwrap_err().contains("positive"));
        assert!(parse_campaign(&argv("spec.json --bogus")).is_err());
        assert!(parse_campaign(&argv("a.json b.json")).is_err(), "two positionals");
    }

    #[test]
    fn parses_frontier_flags() {
        let o = parse_frontier(&argv(
            "map.json --axis rho --tol 0.001 --threads 4 --out results/f \
             --format jsonl --resume --max-waves 3",
        ))
        .unwrap();
        assert_eq!(o.spec_path, "map.json");
        assert_eq!(o.axis.as_deref(), Some("rho"));
        assert_eq!(o.tol, Some(0.001));
        assert_eq!(o.threads, Some(4));
        assert_eq!(o.out_dir, "results/f");
        assert_eq!(o.format, FrontierFormat::JsonLines);
        assert!(o.resume);
        assert_eq!(o.max_waves, Some(3));
        assert_eq!(FrontierFormat::Csv.file_name(), "frontier.csv");
        assert_eq!(FrontierFormat::JsonLines.file_name(), "frontier.jsonl");

        let o = parse_frontier(&argv("map.json")).unwrap();
        assert_eq!(o.format, FrontierFormat::Csv);
        assert!(o.axis.is_none() && o.tol.is_none() && o.escalate.is_none() && !o.resume);
        assert!(!o.progress && o.events.is_none(), "observability defaults off");
        assert!(parse_frontier(&argv("--example")).unwrap().example);

        let o = parse_frontier(&argv("map.json --progress --events ev.jsonl")).unwrap();
        assert!(o.progress);
        assert_eq!(o.events.as_deref(), Some("ev.jsonl"));
        assert!(parse_frontier(&argv("map.json --events")).is_err(), "missing value");
    }

    #[test]
    fn frontier_flag_validation() {
        assert!(parse_frontier(&argv("")).unwrap_err().contains("template"));
        assert!(parse_frontier(&argv("map.json --format xml")).unwrap_err().contains("csv"));
        assert!(parse_frontier(&argv("map.json --tol x")).is_err());
        assert!(parse_frontier(&argv("map.json --max-waves 0")).unwrap_err().contains("positive"));
        assert!(parse_frontier(&argv("map.json --threads 0")).unwrap_err().contains("positive"));
        assert!(parse_frontier(&argv("a.json b.json")).is_err(), "two positionals");
    }

    #[test]
    fn escalate_forms() {
        let o = parse_frontier(&argv("map.json --escalate 9")).unwrap();
        assert_eq!(o.escalate, Some((9, 1)), "step defaults to 1");
        let o = parse_frontier(&argv("map.json --escalate 9:2")).unwrap();
        assert_eq!(o.escalate, Some((9, 2)));
        assert!(parse_frontier(&argv("map.json --escalate x")).is_err());
        assert!(parse_frontier(&argv("map.json --escalate 9:x")).is_err());
        assert!(parse_frontier(&argv("map.json --escalate")).is_err(), "missing value");
    }

    #[test]
    fn escalate_rejects_malformed_arguments() {
        let err = parse_frontier(&argv("map.json --escalate 0")).unwrap_err();
        assert!(err.contains("positive"), "zero max: {err}");
        let err = parse_frontier(&argv("map.json --escalate 9:0")).unwrap_err();
        assert!(err.contains("step must be positive"), "zero step: {err}");
        assert!(parse_escalate("-3").is_err(), "negative max");
        assert!(parse_escalate("9:-1").is_err(), "negative step");
        assert!(parse_escalate("9:2:4").is_err(), "extra component");
        assert!(parse_escalate("").is_err(), "empty");
        assert!(parse_escalate(":").is_err(), "bare separator");
        // MAX below the template's seed count parses here; the frontier
        // spec's validate() rejects it with full context.
        assert_eq!(parse_escalate("1").unwrap(), (1, 1));
    }

    #[test]
    fn parses_shard_flags() {
        let o = parse_shard(&argv(
            "plan spec.json --dir results/shards --shards 3 --format jsonl --detail slim",
        ))
        .unwrap();
        assert_eq!(o.action, ShardAction::Plan);
        assert_eq!(o.spec_path, "spec.json");
        assert_eq!(o.dir, "results/shards");
        assert_eq!(o.shards, Some(3));
        assert_eq!(o.format, emac_core::shard::ShardFormat::JsonLines);
        assert_eq!(o.detail, MetricsDetail::Slim);

        let o = parse_shard(&argv(
            "run spec.json --dir results/shards --shard 1 --resume --threads 2 --progress",
        ))
        .unwrap();
        assert_eq!(o.action, ShardAction::Run);
        assert_eq!(o.shard, Some(1));
        assert!(o.resume);
        assert_eq!(o.threads, Some(2));
        assert!(o.progress);

        let o = parse_shard(&argv("merge --dir results/shards --out merged.csv")).unwrap();
        assert_eq!(o.action, ShardAction::Merge);
        assert_eq!(o.out.as_deref(), Some("merged.csv"));

        let o = parse_shard(&argv("status --dir results/shards")).unwrap();
        assert_eq!(o.action, ShardAction::Status);
    }

    #[test]
    fn shard_flag_validation() {
        let err = parse_shard(&argv("prune --dir d")).unwrap_err();
        assert!(err.contains("unknown shard action"), "{err}");
        assert!(parse_shard(&argv("")).unwrap_err().contains("needs an action"));
        assert!(parse_shard(&argv("plan --dir d --shards 2")).unwrap_err().contains("spec file"));
        assert!(parse_shard(&argv("plan s.json --shards 2")).unwrap_err().contains("--dir"));
        assert!(parse_shard(&argv("plan s.json --dir d")).unwrap_err().contains("--shards"));
        assert!(parse_shard(&argv("plan s.json --dir d --shards 0"))
            .unwrap_err()
            .contains("--shards must be positive"));
        assert!(parse_shard(&argv("run s.json --dir d")).unwrap_err().contains("--shard"));
        assert!(parse_shard(&argv("run s.json --dir d --shard 0 --threads 0"))
            .unwrap_err()
            .contains("--threads must be positive"));
        assert!(parse_shard(&argv("merge")).unwrap_err().contains("--dir"));
        // flags are action-scoped
        assert!(parse_shard(&argv("merge --dir d --shards 2"))
            .unwrap_err()
            .contains("only for `emac shard plan`"));
        assert!(parse_shard(&argv("plan s.json --dir d --shards 2 --resume"))
            .unwrap_err()
            .contains("only for `emac shard run`"));
        assert!(parse_shard(&argv("run s.json --dir d --shard 0 --out x"))
            .unwrap_err()
            .contains("only for `emac shard merge`"));
        assert!(parse_shard(&argv("merge --dir d --progress"))
            .unwrap_err()
            .contains("only for `emac shard run`"));
        assert!(parse_shard(&argv("merge --dir d extra.json")).is_err(), "stray positional");
        assert!(parse_shard(&argv("plan a.json b.json --dir d --shards 2")).is_err());
        assert!(parse_shard(&argv("plan s.json --dir d --shards x")).is_err());
        assert!(parse_shard(&argv("plan s.json --dir d --shards")).is_err(), "missing value");
    }

    #[test]
    fn parses_obs_flags() {
        let o = parse_obs(&argv("report a/events.jsonl b/events.jsonl")).unwrap();
        assert_eq!(o.files, vec!["a/events.jsonl".to_string(), "b/events.jsonl".to_string()]);
        assert!(parse_obs(&argv("")).unwrap_err().contains("needs an action"));
        assert!(parse_obs(&argv("tail ev.jsonl")).unwrap_err().contains("unknown obs action"));
        assert!(parse_obs(&argv("report")).unwrap_err().contains("at least one"));
        assert!(parse_obs(&argv("report --json")).unwrap_err().contains("unexpected"));
    }

    #[test]
    fn fault_flags() {
        let o = parse(&argv("--alg k-cycle --jam 1/10")).unwrap();
        let f = o.faults.expect("--jam implies a fault spec");
        assert_eq!(f.jam, Rate::new(1, 10));
        assert_eq!(FaultSpec { jam: Rate::new(1, 10), ..Default::default() }, f);
        let spec = parse(&argv("--alg k-cycle --jam 1/10")).unwrap().to_spec();
        assert_eq!(spec.faults.unwrap().jam, Rate::new(1, 10));

        let json = r#"{"jam":"1/8","crash":"1/500","crash_len":32,"seed":7}"#;
        let o = parse(&["--alg".into(), "k-cycle".into(), "--faults".into(), json.into()]).unwrap();
        let f = o.faults.unwrap();
        assert_eq!(
            (f.jam, f.crash, f.crash_len, f.seed),
            (Rate::new(1, 8), Rate::new(1, 500), 32, 7)
        );

        assert!(parse(&argv("--alg k-cycle")).unwrap().faults.is_none());
        assert!(parse(&argv("--alg k-cycle --jam 3/2")).is_err(), "super-unit rate");
        assert!(parse(&argv("--alg k-cycle --jam x")).is_err(), "garbage rate");
        let err = parse(&[
            "--alg".into(),
            "k-cycle".into(),
            "--jam".into(),
            "1/10".into(),
            "--faults".into(),
            "{}".into(),
        ])
        .unwrap_err();
        assert!(err.contains("conflicts"), "{err}");
        assert!(parse_faults("{\"bogus\":1}").is_err(), "unknown fault key");
        assert!(parse_faults("not json").is_err());
    }

    #[test]
    fn probe_cap_flag() {
        let o = parse(&argv("--alg k-cycle --probe-cap 500")).unwrap();
        assert_eq!(o.probe_cap, Some(500));
        assert_eq!(o.to_spec().probe_cap, Some(500));
        assert!(parse(&argv("--alg k-cycle --probe-cap 0")).unwrap_err().contains("positive"));
        assert!(parse(&argv("--alg k-cycle --probe-cap x")).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("--n 4")).is_err(), "missing --alg");
        assert!(parse(&argv("--alg count-hop --n 1")).is_err(), "n too small");
        assert!(parse(&argv("--alg count-hop --bogus 1")).is_err(), "unknown flag");
        assert!(parse(&argv("--alg count-hop --n")).is_err(), "missing value");
        let o = parse(&argv("--alg nope")).unwrap();
        assert!(make_algorithm(&o).is_err());
        let o = parse(&argv("--alg count-hop --adversary nope")).unwrap();
        assert!(make_adversary(&o).is_err());
    }

    #[test]
    fn every_listed_algorithm_constructs() {
        for alg in [
            "orchestra",
            "orchestra-nomb",
            "count-hop",
            "adjust-window",
            "k-cycle",
            "k-cycle:1/2",
            "k-clique",
            "k-subsets",
            "k-subsets-rrw",
            "duty-cycle",
        ] {
            let o = parse(&[String::from("--alg"), alg.into()]).unwrap();
            let built = make_algorithm(&o).unwrap();
            assert!(!built.name().is_empty());
        }
    }
}
