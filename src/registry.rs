//! The one name→constructor registry shared by the CLI, the campaign
//! executor, and every bench binary.
//!
//! A [`ScenarioSpec`] names its algorithm and adversary; this registry is
//! the single place where those names become objects. It lives in the
//! facade crate because it must see both the algorithms (`emac-core`) and
//! the adversary implementations (`emac-adversary`); the orchestration
//! machinery in `emac_core::campaign` only knows the [`ScenarioFactory`]
//! trait.

use std::sync::Arc;

use emac_adversary::{
    Bursty, LeastOnPair, LeastOnStation, Lemma1Adversary, RoundRobinLoad, SingleTarget,
    SleeperTargeting, SpreadFromOne, UniformRandom,
};
use emac_core::campaign::{ScenarioFactory, ScenarioSpec};
use emac_core::prelude::*;
use emac_sim::{Adversary, NoInjections, OnSchedule};

/// The default registry: every algorithm of the paper plus the baseline,
/// and every adversary family the experiments use.
#[derive(Clone, Copy, Debug, Default)]
pub struct Registry;

/// `(name, description)` rows for `emac list` and documentation.
pub const ALGORITHMS: &[(&str, &str)] = &[
    ("orchestra", "cap 3, stable at rho = 1 (queues <= 2n^3+beta)"),
    ("orchestra-nomb", "ablation: Orchestra without move-big-to-front"),
    ("count-hop", "cap 2, universal, latency O((n^2+beta)/(1-rho))"),
    ("adjust-window", "cap 2, universal, plain packets"),
    ("k-cycle", "cap k (--k), oblivious, rho < (k-1)/(n-1)"),
    ("k-cycle:P/Q", "ablation: k-Cycle with activity segment scaled by P/Q"),
    ("k-clique", "cap k, oblivious direct"),
    ("k-subsets", "cap k, oblivious direct, optimal rate k(k-1)/(n(n-1))"),
    ("k-subsets-rrw", "bounded-latency variant"),
    ("duty-cycle", "uncoordinated baseline (loses packets by design)"),
];

/// `(name, description)` rows for the adversary families.
pub const ADVERSARIES: &[(&str, &str)] = &[
    ("none", "no injections"),
    ("uniform", "uniform random sources and destinations (seeded)"),
    ("single-target", "flood one station for one destination (target/dest)"),
    ("round-robin", "rotating sources and destinations"),
    ("bursty", "periodic full-budget bursts into one station (target, period)"),
    ("spread-from-one", "one source station, rotating destinations (target)"),
    ("spread-from-one-rand", "one source station, seeded random destinations (target)"),
    ("sleeper", "adaptive: targets whoever sleeps (Theorem 2)"),
    ("lemma1", "adaptive: the Lemma 1 construction"),
    ("least-on", "schedule-aware: floods the least-on station (Theorem 6; horizon)"),
    ("least-on-pair", "schedule-aware: floods the least co-scheduled pair (Theorem 9; horizon)"),
];

/// Default schedule-analysis horizon when a spec names a schedule-aware
/// adversary without setting one.
pub const DEFAULT_HORIZON: u64 = 20_000;

impl Registry {
    /// Construct the algorithm a spec names (see [`ALGORITHMS`]).
    pub fn make_algorithm(spec: &ScenarioSpec) -> Result<Box<dyn Algorithm>, String> {
        // "k-cycle:P/Q" scales the activity segment δ by P/Q (ablation A2)
        if let Some(scale) = spec.algorithm.strip_prefix("k-cycle:") {
            let (num, den) = scale
                .split_once('/')
                .ok_or_else(|| format!("bad delta scale {scale:?}, expected P/Q"))?;
            let num: u64 = num.parse().map_err(|e| format!("delta scale: {e}"))?;
            let den: u64 = den.parse().map_err(|e| format!("delta scale: {e}"))?;
            if num == 0 || den == 0 {
                return Err("delta scale must be positive".into());
            }
            return Ok(Box::new(KCycle::with_delta_scale(spec.k, num, den)));
        }
        Ok(match spec.algorithm.as_str() {
            "orchestra" => Box::new(Orchestra::new()),
            "orchestra-nomb" => Box::new(Orchestra::without_move_big()),
            "count-hop" => Box::new(CountHop::new()),
            "adjust-window" => Box::new(AdjustWindow::new()),
            "k-cycle" => Box::new(KCycle::new(spec.k)),
            "k-clique" => Box::new(KClique::new(spec.k)),
            "k-subsets" => Box::new(KSubsets::new(spec.k)),
            "k-subsets-rrw" => Box::new(KSubsets::with_rrw(spec.k)),
            "duty-cycle" => Box::new(DutyCycle::seeded(spec.k, spec.seed)),
            other => return Err(format!("unknown algorithm {other:?} (see `emac list`)")),
        })
    }

    /// Construct the adversary a spec names (see [`ADVERSARIES`]).
    /// `schedule` must be the algorithm's on/off schedule for the
    /// schedule-aware families.
    pub fn make_adversary(
        spec: &ScenarioSpec,
        schedule: Option<&Arc<dyn OnSchedule>>,
    ) -> Result<Box<dyn Adversary>, String> {
        let target = spec.target.unwrap_or(0);
        let dest = spec.dest.unwrap_or(spec.n.saturating_sub(1));
        if target >= spec.n || dest >= spec.n {
            return Err(format!("target/dest out of range for n={}", spec.n));
        }
        let horizon = spec.horizon.unwrap_or(DEFAULT_HORIZON);
        Ok(match spec.adversary.as_str() {
            "none" => Box::new(NoInjections),
            "uniform" => Box::new(UniformRandom::new(spec.seed)),
            "single-target" => {
                if target == dest {
                    return Err("single-target needs target != dest".into());
                }
                Box::new(SingleTarget::new(target, dest))
            }
            "round-robin" => Box::new(RoundRobinLoad::new()),
            "bursty" => Box::new(Bursty::new(target, spec.period.unwrap_or(64))),
            "spread-from-one" => Box::new(SpreadFromOne::new(target)),
            "spread-from-one-rand" => Box::new(SpreadFromOne::seeded(target, spec.seed)),
            "sleeper" => Box::new(SleeperTargeting::new()),
            "lemma1" => Box::new(Lemma1Adversary::new()),
            "least-on" => {
                let s = schedule.ok_or_else(|| oblivious_only(spec))?;
                Box::new(LeastOnStation::new(s, spec.n, horizon))
            }
            "least-on-pair" => {
                let s = schedule.ok_or_else(|| oblivious_only(spec))?;
                Box::new(LeastOnPair::new(s, spec.n, horizon))
            }
            other => return Err(format!("unknown adversary {other:?} (see `emac list`)")),
        })
    }
}

fn oblivious_only(spec: &ScenarioSpec) -> String {
    format!(
        "adversary {:?} needs a precomputed on/off schedule, but none was supplied — \
         either {:?} is adaptive (it has no schedule), or this entry point does not \
         provide schedules (use `emac campaign` or `Runner::run_against`)",
        spec.adversary, spec.algorithm
    )
}

impl ScenarioFactory for Registry {
    fn algorithm(&self, spec: &ScenarioSpec) -> Result<Box<dyn Algorithm>, String> {
        Registry::make_algorithm(spec)
    }

    fn adversary(
        &self,
        spec: &ScenarioSpec,
        schedule: Option<&Arc<dyn OnSchedule>>,
    ) -> Result<Box<dyn Adversary>, String> {
        Registry::make_adversary(spec, schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emac_core::campaign::Campaign;
    use emac_sim::Rate;

    #[test]
    fn every_listed_algorithm_constructs() {
        for (name, _) in ALGORITHMS {
            let mut spec = ScenarioSpec::new(name.replace("P/Q", "1/2"), "none");
            spec.n = 6;
            let alg = Registry::make_algorithm(&spec).unwrap();
            assert!(!alg.name().is_empty(), "{name}");
            assert!(alg.required_cap(6) >= 2, "{name}");
        }
        let spec = ScenarioSpec::new("nope", "none");
        assert!(Registry::make_algorithm(&spec).is_err());
        let spec = ScenarioSpec::new("k-cycle:0/2", "none");
        assert!(Registry::make_algorithm(&spec).is_err());
    }

    #[test]
    fn every_listed_adversary_constructs_with_the_right_inputs() {
        // an oblivious algorithm's schedule for the schedule-aware families
        let spec = ScenarioSpec::new("k-cycle", "none");
        let built = Registry::make_algorithm(&spec).unwrap().build(6);
        let schedule = match &built.wake {
            emac_sim::WakeMode::Scheduled(s) => Arc::clone(s),
            _ => unreachable!("k-cycle is oblivious"),
        };
        for (name, _) in ADVERSARIES {
            let mut spec = ScenarioSpec::new("k-cycle", *name);
            spec.n = 6;
            spec.horizon = Some(100);
            assert!(Registry::make_adversary(&spec, Some(&schedule)).is_ok(), "{name}");
        }
        // schedule-aware families reject adaptive algorithms
        let spec = ScenarioSpec::new("count-hop", "least-on");
        let err = Registry::make_adversary(&spec, None).err().expect("must be rejected");
        assert!(err.contains("adaptive"), "{err}");
        // range checks
        let mut spec = ScenarioSpec::new("count-hop", "single-target");
        spec.n = 4;
        spec.target = Some(9);
        assert!(Registry::make_adversary(&spec, None).is_err());
    }

    #[test]
    fn registry_drives_a_campaign_end_to_end() {
        let mut spec = ScenarioSpec::new("count-hop", "uniform");
        spec.n = 4;
        spec.rho = Rate::new(1, 2);
        spec.rounds = 5_000;
        spec.drain = Some(5_000);
        let result = Campaign::new().threads(2).run(&[spec], &Registry);
        assert!(result.all_clean(), "{:?}", result.first_error());
        let report = result.reports().next().unwrap();
        assert_eq!(report.drained, Some(true));
        assert_eq!(report.metrics.delivered, report.metrics.injected);
    }
}
